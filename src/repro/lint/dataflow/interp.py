"""Shared abstract interpreter for the dataflow analyses.

:class:`Evaluator` walks function bodies over abstract values
(:class:`AV`), resolving names, attributes, and calls through the
:class:`~repro.lint.dataflow.model.ProjectModel`.  Control flow is handled
by evaluating every branch and joining the resulting environments, and
loop bodies are evaluated twice (enough for the flat lattices both
analyses use, and bounded regardless by the join).

The interpreter is analysis-agnostic: the *meaning* of a value lives in
the ``payload`` slot, and subclasses define the lattice through a small
set of hooks (``join_payload``, ``const_payload``, ``binop_payload``,
``call_external``, ...).  Interprocedural behaviour is delegated to the
``call_project`` hook so each analysis can pick its own summary strategy:
the unit checker memoizes context-sensitive summaries keyed by argument
units, while the taint certifier computes one symbolic summary per
function and substitutes actuals at call sites.  Both are driven to a
fixpoint by re-evaluating summaries until they stop changing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .model import FunctionInfo, ModuleCtx, ProjectModel

__all__ = ["AV", "Finding", "Reporter", "Evaluator", "EXTERNAL_ROOTS", "BUILTIN_NAMES"]

#: Import roots treated as external libraries (never project code).
EXTERNAL_ROOTS = frozenset(
    {
        "numpy", "scipy", "math", "json", "time", "datetime", "os", "sys",
        "re", "abc", "dataclasses", "typing", "functools", "itertools",
        "collections", "argparse", "pathlib", "warnings", "copy",
    }
)

BUILTIN_NAMES = frozenset(
    {
        "float", "int", "bool", "str", "len", "abs", "round", "min", "max",
        "sum", "sorted", "range", "enumerate", "zip", "tuple", "list",
        "dict", "set", "frozenset", "isinstance", "issubclass", "getattr",
        "setattr", "hasattr", "print", "any", "all", "repr", "divmod",
        "pow", "reversed", "map", "filter", "iter", "next", "vars", "id",
        "type", "ValueError", "TypeError", "KeyError", "RuntimeError",
        "NotImplementedError", "Exception", "StopIteration", "OverflowError",
        "ZeroDivisionError", "ArithmeticError", "AttributeError",
    }
)


@dataclass(frozen=True)
class AV:
    """Abstract value: analysis payload plus best-effort object identity."""

    #: Analysis-specific lattice element (None is the analysis bottom).
    payload: object = None
    #: Project class this value is an instance of, when known.
    cls: Optional[str] = None
    #: Project function this value *is* (a callable reference).
    func: Optional[FunctionInfo] = None
    #: Receiver the callable reference is bound to.
    bound: Optional["AV"] = None
    #: Class name when this value is the class object itself.
    ctor: Optional[str] = None
    #: Dotted path when this value is an external module/function.
    ext: Optional[str] = None
    #: Element values of a tuple/list literal, when tracked.
    elems: Optional[Tuple["AV", ...]] = None


@dataclass(frozen=True, order=True)
class Finding:
    """One dataflow finding, in engine-compatible coordinates."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str


class Reporter:
    """Collects findings with de-duplication and a mute stack.

    Summary evaluations re-run function bodies in many contexts; only the
    default (declaration-context) pass is allowed to report, which the
    analyses arrange by muting the reporter around auxiliary evaluations.
    """

    def __init__(self) -> None:
        self._seen = set()
        self.findings: List[Finding] = []
        self._mute = 0

    def mute(self) -> None:
        self._mute += 1

    def unmute(self) -> None:
        self._mute -= 1

    @property
    def muted(self) -> bool:
        return self._mute > 0

    def report(self, path: str, node: ast.AST, rule_id: str, message: str) -> None:
        if self._mute > 0:
            return
        finding = Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )
        key = (finding.path, finding.line, finding.col, finding.rule_id, finding.message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)


class Evaluator:
    """Base abstract interpreter; subclasses implement the lattice hooks."""

    MAX_DEPTH = 40
    LOOP_PASSES = 2

    def __init__(self, model: ProjectModel, reporter: Reporter) -> None:
        self.model = model
        self.reporter = reporter
        self._depth = 0
        self._global_cache: Dict[Tuple[str, str], AV] = {}
        self._global_stack = set()
        self._attr_cache: Dict[Tuple[str, str], Optional[AV]] = {}
        self._attr_stack = set()

    # ------------------------------------------------------------------
    # Hooks (subclasses override)
    # ------------------------------------------------------------------

    def join_payload(self, a: object, b: object) -> object:
        if a is None:
            return b
        if b is None:
            return a
        return a if a == b else None

    def const_payload(self, value: object) -> object:
        return None

    def binop_payload(self, node: ast.BinOp, left: AV, right: AV, ctx) -> object:
        return None

    def unary_payload(self, node: ast.UnaryOp, operand: AV, ctx) -> object:
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return operand.payload
        return None

    def compare_payload(self, node: ast.Compare, operands: List[AV], ctx) -> object:
        return None

    def subscript_payload(self, obj: AV, node: ast.Subscript, ctx) -> object:
        return obj.payload

    def attr_av(self, obj: AV, attr: str, node: ast.AST, ctx) -> AV:
        return AV()

    def param_av(self, func: FunctionInfo, name: str) -> AV:
        return AV(cls=self._annotation_cls(func.annotations.get(name, ())))

    def global_av(self, name: str, node: ast.AST, ctx) -> AV:
        return AV()

    def call_project(self, node, finfo, bound, args_map, arg_avs, complete, ctx) -> AV:
        """A resolved call to a project function; default: opaque."""
        return AV(cls=self._annotation_cls(finfo.return_annotation))

    def call_constructor(self, node, class_name, args_map, arg_avs, complete, ctx) -> AV:
        return AV(cls=class_name)

    def call_external(self, node, dotted, receiver, arg_avs, env, ctx) -> AV:
        """A call that does not resolve to project code."""
        return AV()

    def on_call(self, node: ast.Call, callee_name: str, arg_avs: List[AV], ctx) -> None:
        """Observed for *every* call, resolved or not (sink checks)."""

    def on_branch(self, test: AV, node: ast.AST, ctx) -> None:
        """A control-flow decision was made on ``test``."""

    def on_return(self, value: AV, node: ast.AST, ctx) -> None:
        """A function is returning ``value``."""

    def bind_name(self, name: str, value: AV, node: ast.AST, env: Dict[str, AV], ctx) -> None:
        env[name] = value

    def bind_attr(self, obj: AV, attr: str, value: AV, node: ast.AST, ctx) -> None:
        """``obj.attr = value`` was executed."""

    def joined_payload(self, avs: List[AV]) -> object:
        payload = None
        for av in avs:
            payload = self.join_payload(payload, av.payload)
        return payload

    # ------------------------------------------------------------------
    # Function evaluation
    # ------------------------------------------------------------------

    def _annotation_cls(self, candidates: Iterable[str]) -> Optional[str]:
        for name in candidates:
            if self.model.class_named(name) is not None:
                return name
        return None

    def seed_env(self, func: FunctionInfo, self_av: Optional[AV] = None) -> Dict[str, AV]:
        env: Dict[str, AV] = {}
        if func.is_method:
            env["self"] = self_av if self_av is not None else AV(cls=func.class_name)
        for name in func.params:
            env[name] = self.param_av(func, name)
        if func.vararg:
            env[func.vararg] = AV()
        if func.kwarg:
            env[func.kwarg] = AV()
        return env

    def exec_function(self, func: FunctionInfo, env: Dict[str, AV]) -> AV:
        """Evaluate a function body; returns the joined return value."""
        if self._depth >= self.MAX_DEPTH:
            return AV()
        self._depth += 1
        try:
            rets: List[AV] = []
            self._exec_body(func.node.body, env, func, rets)
            if not rets:
                return AV()
            out = rets[0]
            for av in rets[1:]:
                out = self.join_av(out, av)
            return out
        finally:
            self._depth -= 1

    def join_av(self, a: AV, b: AV) -> AV:
        elems = None
        if a.elems is not None and b.elems is not None and len(a.elems) == len(b.elems):
            elems = tuple(self.join_av(x, y) for x, y in zip(a.elems, b.elems))
        return AV(
            payload=self.join_payload(a.payload, b.payload),
            cls=a.cls if a.cls == b.cls else None,
            func=a.func if a.func is b.func else None,
            bound=a.bound if a.bound is b.bound else None,
            ctor=a.ctor if a.ctor == b.ctor else None,
            ext=a.ext if a.ext == b.ext else None,
            elems=elems,
        )

    def _join_env(self, a: Dict[str, AV], b: Dict[str, AV]) -> Dict[str, AV]:
        out: Dict[str, AV] = {}
        for name in set(a) | set(b):
            if name in a and name in b:
                out[name] = self.join_av(a[name], b[name])
            else:
                out[name] = a.get(name) or b.get(name)
        return out

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_body(self, stmts, env, ctx, rets) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, ctx, rets)

    def _exec_stmt(self, stmt, env, ctx, rets) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env, ctx)
            for target in stmt.targets:
                self._bind_target(target, value, stmt, env, ctx)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env, ctx)
            else:
                value = AV()
            cls = self._annotation_cls(
                _annotation_candidates(stmt.annotation)
            )
            if cls is not None and value.cls is None:
                value = replace(value, cls=cls)
            self._bind_target(stmt.target, value, stmt, env, ctx)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target, env, ctx)
            operand = self.eval(stmt.value, env, ctx)
            synthetic = ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value)
            ast.copy_location(synthetic, stmt)
            payload = self.binop_payload(synthetic, current, operand, ctx)
            self._bind_target(stmt.target, AV(payload=payload), stmt, env, ctx)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env, ctx) if stmt.value is not None else AV()
            self.on_return(value, stmt, ctx)
            rets.append(value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env, ctx)
        elif isinstance(stmt, ast.If):
            test = self.eval(stmt.test, env, ctx)
            self.on_branch(test, stmt, ctx)
            body_env = dict(env)
            else_env = dict(env)
            self._exec_body(stmt.body, body_env, ctx, rets)
            self._exec_body(stmt.orelse, else_env, ctx, rets)
            env.clear()
            env.update(self._join_env(body_env, else_env))
        elif isinstance(stmt, ast.IfExp):  # pragma: no cover - expression form
            self.eval(stmt, env, ctx)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                test = self.eval(stmt.test, env, ctx)
                self.on_branch(test, stmt, ctx)
            else:
                iterable = self.eval(stmt.iter, env, ctx)
                element = AV(payload=iterable.payload)
                if iterable.elems:
                    element = iterable.elems[0]
                    for extra in iterable.elems[1:]:
                        element = self.join_av(element, extra)
                self._bind_target(stmt.target, element, stmt, env, ctx)
            for _ in range(self.LOOP_PASSES):
                loop_env = dict(env)
                self._exec_body(stmt.body, loop_env, ctx, rets)
                merged = self._join_env(env, loop_env)
                env.clear()
                env.update(merged)
            self._exec_body(stmt.orelse, env, ctx, rets)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, env, ctx)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value, stmt, env, ctx)
            self._exec_body(stmt.body, env, ctx, rets)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_body(stmt.body, body_env, ctx, rets)
            merged = self._join_env(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = AV()
                self._exec_body(handler.body, handler_env, ctx, rets)
                merged = self._join_env(merged, handler_env)
            env.clear()
            env.update(merged)
            self._exec_body(stmt.orelse, env, ctx, rets)
            self._exec_body(stmt.finalbody, env, ctx, rets)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env, ctx)
        elif isinstance(stmt, ast.Assert):
            test = self.eval(stmt.test, env, ctx)
            self.on_branch(test, stmt, ctx)
            if stmt.msg is not None:
                self.eval(stmt.msg, env, ctx)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env[stmt.name] = AV()
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Pass / Break / Continue / Import / Global / Nonlocal: no effect.

    def _bind_target(self, target, value: AV, stmt, env, ctx) -> None:
        if isinstance(target, ast.Name):
            self.bind_name(target.id, value, stmt, env, ctx)
        elif isinstance(target, ast.Attribute):
            obj = self.eval(target.value, env, ctx)
            self.bind_attr(obj, target.attr, value, stmt, ctx)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems = value.elems
            if elems is not None and len(elems) == len(target.elts):
                for sub, av in zip(target.elts, elems):
                    self._bind_target(sub, av, stmt, env, ctx)
            else:
                spread = AV(payload=value.payload)
                for sub in target.elts:
                    self._bind_target(sub, spread, stmt, env, ctx)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, AV(payload=value.payload), stmt, env, ctx)
        elif isinstance(target, ast.Subscript):
            obj = self.eval(target.value, env, ctx)
            if isinstance(target.value, ast.Name) and target.value.id in env:
                merged = self.join_av(obj, AV(payload=value.payload))
                env[target.value.id] = merged

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval(self, node, env: Dict[str, AV], ctx) -> AV:
        if node is None:
            return AV()
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is not None:
            return method(node, env, ctx)
        # Unhandled expression kinds: evaluate children for effects.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env, ctx)
        return AV()

    def _eval_constant(self, node, env, ctx) -> AV:
        return AV(payload=self.const_payload(node.value))

    def _eval_name(self, node, env, ctx) -> AV:
        name = node.id
        if name in env:
            return env[name]
        mod = self.model.modules.get(ctx.path)
        if mod is not None:
            if name in mod.assigns:
                return self.module_global(ctx.path, name)
            if name in mod.classes:
                return AV(ctor=name)
            if name in mod.functions:
                return AV(func=mod.functions[name])
        resolved = self.model.resolve_alias(ctx.path, name)
        last = resolved.rsplit(".", 1)[-1]
        if self.model.class_named(last) is not None:
            return AV(ctor=last)
        unique = self.model.unique_function(last)
        if unique is not None:
            return AV(func=unique)
        origin = self.model.unique_assign(last)
        if origin is not None:
            return self.module_global(origin[0], last)
        root = resolved.split(".", 1)[0]
        if root in EXTERNAL_ROOTS:
            return AV(ext=resolved)
        if name in BUILTIN_NAMES:
            return AV(ext=f"builtins.{name}")
        return self.global_av(name, node, ctx)

    def module_global(self, path: str, name: str) -> AV:
        """Lazily evaluate a module-level assignment (muted, memoized)."""
        key = (path, name)
        if key in self._global_cache:
            return self._global_cache[key]
        if key in self._global_stack:
            return AV()
        mod = self.model.modules.get(path)
        if mod is None or name not in mod.assigns:
            return AV()
        self._global_stack.add(key)
        self.reporter.mute()
        try:
            value = self.eval(mod.assigns[name], {}, ModuleCtx(path=path))
        finally:
            self.reporter.unmute()
            self._global_stack.discard(key)
        self._global_cache[key] = value
        return value

    def _eval_attribute(self, node, env, ctx) -> AV:
        obj = self.eval(node.value, env, ctx)
        attr = node.attr
        if obj.ext is not None:
            return AV(ext=f"{obj.ext}.{attr}")
        if obj.ctor is not None:
            cls = self.model.class_named(obj.ctor)
            if cls is not None and attr in cls.class_assigns:
                return self.eval_class_assign(cls, attr)
            method = self.model.resolve_method(obj.ctor, attr) if cls else None
            if method is not None:
                return AV(func=method)
            return self.attr_av(obj, attr, node, ctx)
        if obj.cls is not None:
            method = self.model.resolve_method(obj.cls, attr)
            if method is not None and not method.is_property:
                return AV(func=method, bound=obj)
            if method is not None and method.is_property:
                return self.call_project(node, method, obj, {}, [], True, ctx)
        return self.attr_av(obj, attr, node, ctx)

    def site_av(self, av: AV) -> AV:
        """Filter hook applied to each ``self.attr = ...`` site value."""
        return av

    def eval_attr_sites(self, class_name: str, attr: str) -> Optional[AV]:
        """Join of every ``self.<attr> = ...`` site value (muted, memoized).

        The site expression is evaluated in an environment seeded with the
        enclosing method's parameters; locals it references resolve through
        the global/convention fallbacks, so an unresolvable site simply
        contributes *unknown*.
        """
        key = (class_name, attr)
        if key in self._attr_cache:
            return self._attr_cache[key]
        if key in self._attr_stack:
            return None
        sites = self.model.attr_sites(class_name, attr)
        if not sites:
            self._attr_cache[key] = None
            return None
        self._attr_stack.add(key)
        self.reporter.mute()
        try:
            result: Optional[AV] = None
            for value_expr, method in sites:
                if method is not None:
                    env = self.seed_env(method, AV(cls=class_name))
                    ctx = method
                else:
                    cls = self.model.class_named(class_name)
                    env = {}
                    ctx = ModuleCtx(path=cls.path if cls else "")
                av = self.site_av(self.eval(value_expr, env, ctx))
                result = av if result is None else self.join_av(result, av)
        finally:
            self.reporter.unmute()
            self._attr_stack.discard(key)
        self._attr_cache[key] = result
        return result

    def eval_class_assign(self, cls, attr: str) -> AV:
        self.reporter.mute()
        try:
            return self.eval(cls.class_assigns[attr], {}, ModuleCtx(path=cls.path))
        finally:
            self.reporter.unmute()

    def _eval_tuple(self, node, env, ctx) -> AV:
        elems = tuple(self.eval(el, env, ctx) for el in node.elts)
        return AV(payload=self.joined_payload(list(elems)), elems=elems)

    _eval_list = _eval_tuple

    def _eval_set(self, node, env, ctx) -> AV:
        avs = [self.eval(el, env, ctx) for el in node.elts]
        return AV(payload=self.joined_payload(avs))

    def _eval_dict(self, node, env, ctx) -> AV:
        avs = []
        for key, value in zip(node.keys, node.values):
            if key is not None:
                self.eval(key, env, ctx)
            avs.append(self.eval(value, env, ctx))
        return AV(payload=self.joined_payload(avs))

    def _eval_binop(self, node, env, ctx) -> AV:
        left = self.eval(node.left, env, ctx)
        right = self.eval(node.right, env, ctx)
        return AV(payload=self.binop_payload(node, left, right, ctx))

    def _eval_unaryop(self, node, env, ctx) -> AV:
        operand = self.eval(node.operand, env, ctx)
        return AV(payload=self.unary_payload(node, operand, ctx))

    def _eval_boolop(self, node, env, ctx) -> AV:
        avs = [self.eval(v, env, ctx) for v in node.values]
        out = avs[0]
        for av in avs[1:]:
            out = self.join_av(out, av)
        return out

    def _eval_compare(self, node, env, ctx) -> AV:
        operands = [self.eval(node.left, env, ctx)]
        operands.extend(self.eval(comp, env, ctx) for comp in node.comparators)
        return AV(payload=self.compare_payload(node, operands, ctx))

    def _eval_ifexp(self, node, env, ctx) -> AV:
        test = self.eval(node.test, env, ctx)
        self.on_branch(test, node, ctx)
        body = self.eval(node.body, env, ctx)
        orelse = self.eval(node.orelse, env, ctx)
        return self.join_av(body, orelse)

    def _eval_subscript(self, node, env, ctx) -> AV:
        obj = self.eval(node.value, env, ctx)
        self.eval(node.slice, env, ctx)
        index = node.slice
        if (
            obj.elems is not None
            and isinstance(index, ast.Constant)
            and isinstance(index.value, int)
            and not isinstance(index.value, bool)
            and -len(obj.elems) <= index.value < len(obj.elems)
        ):
            return obj.elems[index.value]
        return AV(payload=self.subscript_payload(obj, node, ctx))

    def _eval_slice(self, node, env, ctx) -> AV:
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self.eval(part, env, ctx)
        return AV()

    def _eval_starred(self, node, env, ctx) -> AV:
        return self.eval(node.value, env, ctx)

    def _eval_joinedstr(self, node, env, ctx) -> AV:
        avs = [
            self.eval(value.value, env, ctx)
            for value in node.values
            if isinstance(value, ast.FormattedValue)
        ]
        return AV(payload=self.string_payload(avs))

    def string_payload(self, avs: List[AV]) -> object:
        return self.joined_payload(avs)

    def _eval_lambda(self, node, env, ctx) -> AV:
        return AV()

    def _eval_await(self, node, env, ctx) -> AV:
        return self.eval(node.value, env, ctx)

    def _eval_namedexpr(self, node, env, ctx) -> AV:
        value = self.eval(node.value, env, ctx)
        self._bind_target(node.target, value, node, env, ctx)
        return value

    def _eval_listcomp(self, node, env, ctx) -> AV:
        return self._eval_comprehension(node, env, ctx, node.elt)

    _eval_setcomp = _eval_listcomp
    _eval_generatorexp = _eval_listcomp

    def _eval_dictcomp(self, node, env, ctx) -> AV:
        comp_env = dict(env)
        self._bind_generators(node.generators, comp_env, ctx)
        self.eval(node.key, comp_env, ctx)
        value = self.eval(node.value, comp_env, ctx)
        return AV(payload=value.payload)

    def _eval_comprehension(self, node, env, ctx, elt) -> AV:
        comp_env = dict(env)
        self._bind_generators(node.generators, comp_env, ctx)
        value = self.eval(elt, comp_env, ctx)
        return AV(payload=value.payload)

    def _bind_generators(self, generators, env, ctx) -> None:
        for gen in generators:
            iterable = self.eval(gen.iter, env, ctx)
            element = AV(payload=iterable.payload)
            if iterable.elems:
                element = iterable.elems[0]
                for extra in iterable.elems[1:]:
                    element = self.join_av(element, extra)
            self._bind_target(gen.target, element, gen.iter, env, ctx)
            for cond in gen.ifs:
                test = self.eval(cond, env, ctx)
                self.on_branch(test, cond, ctx)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env, ctx) -> AV:
        callee = node.func

        # super() — bind to the first project-visible base class.
        if isinstance(callee, ast.Name) and callee.id == "super" and not node.args:
            base = None
            class_name = getattr(ctx, "class_name", None)
            if class_name:
                cls = self.model.class_named(class_name)
                if cls is not None and cls.bases:
                    base = cls.bases[0]
            return AV(cls=base)

        target = self.eval(callee, env, ctx)
        callee_name = ""
        if isinstance(callee, ast.Name):
            callee_name = callee.id
        elif isinstance(callee, ast.Attribute):
            callee_name = callee.attr

        if target.func is not None:
            result = self._project_call(node, target.func, target.bound, env, ctx)
        elif target.ctor is not None:
            result = self._constructor_call(node, target.ctor, env, ctx)
        else:
            receiver = None
            if isinstance(callee, ast.Attribute):
                receiver = self.eval(callee.value, env, ctx)
            dotted = target.ext or callee_name
            arg_avs = self._eval_args(node, env, ctx)
            result = self.call_external(node, dotted, receiver, arg_avs, env, ctx)
            self.on_call(node, callee_name, arg_avs, ctx)
            return result

        arg_avs = self._eval_args(node, env, ctx, effects=False)
        self.on_call(node, callee_name, arg_avs, ctx)
        return result

    def _eval_args(self, node: ast.Call, env, ctx, effects: bool = True) -> List[AV]:
        avs: List[AV] = []
        for arg in node.args:
            expr = arg.value if isinstance(arg, ast.Starred) else arg
            avs.append(self.eval(expr, env, ctx) if effects else self._cached_arg(expr, env, ctx))
        for kw in node.keywords:
            avs.append(
                self.eval(kw.value, env, ctx) if effects else self._cached_arg(kw.value, env, ctx)
            )
        return avs

    def _cached_arg(self, expr, env, ctx) -> AV:
        # Args were already evaluated once by match_args; re-evaluate muted
        # so effect hooks do not fire twice.
        self.reporter.mute()
        try:
            return self.eval(expr, env, ctx)
        finally:
            self.reporter.unmute()

    def match_args(self, params: Tuple[str, ...], node: ast.Call, env, ctx, has_kwarg=False):
        """Evaluate call arguments and map them onto parameter names.

        Returns ``(mapping, arg_avs, complete)`` where ``mapping`` maps a
        parameter name to ``(arg_node, AV)`` and ``complete`` is False when
        ``*args``/``**kwargs`` forwarding defeats positional matching.
        """
        mapping: Dict[str, Tuple[ast.AST, AV]] = {}
        arg_avs: List[AV] = []
        complete = True
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arg_avs.append(self.eval(arg.value, env, ctx))
                complete = False
                continue
            av = self.eval(arg, env, ctx)
            arg_avs.append(av)
            if position < len(params):
                mapping[params[position]] = (arg, av)
            position += 1
        for kw in node.keywords:
            av = self.eval(kw.value, env, ctx)
            arg_avs.append(av)
            if kw.arg is None:
                complete = False
            elif kw.arg in params:
                mapping[kw.arg] = (kw.value, av)
            elif not has_kwarg:
                complete = False
        return mapping, arg_avs, complete

    def _project_call(self, node, finfo: FunctionInfo, bound, env, ctx) -> AV:
        mapping, arg_avs, complete = self.match_args(
            finfo.params, node, env, ctx, has_kwarg=finfo.kwarg is not None
        )
        return self.call_project(node, finfo, bound, mapping, arg_avs, complete, ctx)

    def _constructor_call(self, node, class_name: str, env, ctx) -> AV:
        init = self.model.constructor(class_name)
        if init is not None:
            params = init.params
            has_kwarg = init.kwarg is not None
        else:
            params = self.model.dataclass_fields(class_name)
            has_kwarg = False
        mapping, arg_avs, complete = self.match_args(params, node, env, ctx, has_kwarg)
        return self.call_constructor(node, class_name, mapping, arg_avs, complete, ctx)


def _annotation_candidates(node) -> Tuple[str, ...]:
    from .model import _annotation_names

    return _annotation_names(node)
