"""Engine-facing adapters: dataflow analyses exposed as MAYA rules.

The dataflow analyses are whole-project passes, but the engine's rule API
is per-module.  :class:`DataflowContext` runs the selected analyses once
over every parsed module and caches the findings by (path, rule id); the
:class:`DataflowRule` subclasses then behave like ordinary rules — one per
rule id, suppressible with ``# maya: ignore[MAYA01x]`` — that simply look
up their precomputed findings for the module at hand.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rules import LintContext, RawFinding, Rule
from .interp import Finding
from .model import ProjectModel
from .numeric import NUMERIC_RULES, analyze_numeric
from .purity import PURITY_RULES, analyze_purity
from .taint import TAINT_RULES, analyze_taint
from .units import UNIT_RULES, analyze_units

__all__ = [
    "DataflowContext",
    "DataflowRule",
    "ANALYSES",
    "dataflow_rules",
    "all_dataflow_rule_ids",
]

#: Analysis name -> the rule ids it powers.
ANALYSES: Dict[str, Tuple[str, ...]] = {
    "units": tuple(sorted(UNIT_RULES)),
    "taint": tuple(sorted(TAINT_RULES)),
    "numeric": tuple(sorted(NUMERIC_RULES)),
    "purity": tuple(sorted(PURITY_RULES)),
}


class DataflowContext:
    """Findings of the selected analyses, indexed for per-module lookup."""

    def __init__(
        self,
        findings: Sequence[Finding],
        certificate: Optional[dict] = None,
        analyses: Tuple[str, ...] = (),
        numeric_certificates: Optional[Dict[str, dict]] = None,
        purity_certificates: Optional[Dict[str, dict]] = None,
    ) -> None:
        self.analyses = analyses
        self.certificate = certificate
        self.numeric_certificates = numeric_certificates
        self.purity_certificates = purity_certificates
        self._by_path_rule: Dict[Tuple[str, str], List[Finding]] = {}
        for finding in findings:
            key = (finding.path, finding.rule_id)
            self._by_path_rule.setdefault(key, []).append(finding)

    @classmethod
    def build(
        cls, modules: Sequence[tuple], analyses: Sequence[str]
    ) -> "DataflowContext":
        """Run the selected analyses over already-parsed modules.

        ``modules`` entries are ``(path, tree)`` or ``(path, tree,
        source_lines)``; source lines feed the numeric analysis' pragma
        scanner and certificate excerpts.
        """
        selected = tuple(
            name for name in ("units", "taint", "numeric", "purity") if name in analyses
        )
        unknown = sorted(set(analyses) - set(ANALYSES))
        if unknown:
            raise ValueError(f"unknown analyses: {', '.join(unknown)}")
        sources = {
            entry[0]: entry[2] for entry in modules if len(entry) > 2
        }
        model = ProjectModel([(entry[0], entry[1]) for entry in modules])
        findings: List[Finding] = []
        certificate = None
        numeric_certs = None
        purity_certs = None
        if "units" in selected:
            findings.extend(analyze_units(model))
        if "taint" in selected:
            taint_findings, certificate = analyze_taint(model)
            findings.extend(taint_findings)
        if "numeric" in selected:
            numeric_findings, numeric_certs = analyze_numeric(model, sources)
            findings.extend(numeric_findings)
        if "purity" in selected:
            purity_findings, purity_certs = analyze_purity(model, sources)
            findings.extend(purity_findings)
        return cls(sorted(findings), certificate, selected, numeric_certs, purity_certs)

    def findings_for(self, path: str, rule_id: str) -> List[Finding]:
        return self._by_path_rule.get((path, rule_id), [])


class DataflowRule(Rule):
    """A rule whose findings were precomputed by a whole-project analysis."""

    analysis: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        dataflow = getattr(ctx, "dataflow", None)
        if dataflow is None:
            return
        for finding in dataflow.findings_for(ctx.path, self.rule_id):
            yield finding.line, finding.col, finding.message


def _make_rule(rule_id: str, analysis: str, summary: str) -> type:
    return type(
        f"Dataflow{rule_id}",
        (DataflowRule,),
        {"rule_id": rule_id, "severity": "error", "summary": summary, "analysis": analysis},
    )


_DATAFLOW_RULES: Tuple[type, ...] = tuple(
    _make_rule(rule_id, analysis, summary)
    for analysis, table in (
        ("units", UNIT_RULES),
        ("taint", TAINT_RULES),
        ("numeric", NUMERIC_RULES),
        ("purity", PURITY_RULES),
    )
    for rule_id, summary in sorted(table.items())
)


def dataflow_rules(analyses: Sequence[str]) -> Tuple[Rule, ...]:
    """Rule instances backing the selected analyses, in rule-id order."""
    return tuple(
        cls() for cls in _DATAFLOW_RULES if cls.analysis in tuple(analyses)
    )


def all_dataflow_rule_ids() -> Tuple[str, ...]:
    return tuple(cls.rule_id for cls in _DATAFLOW_RULES)
