"""Physical-unit inference and checking (MAYA010-MAYA013).

Units are inferred from the repo-wide naming conventions (``_w``, ``_ghz``,
``_mhz``, ``volt``, ``idle_frac``, ``_ms``/``_s``, ``_c``, ...) and
propagated interprocedurally through assignments, attribute stores, and
call summaries.  A :class:`Unit` is a product of base dimensions with a
scale factor, so GHz and MHz share the dimension ``s^-1`` but differ in
scale — adding them is flagged just like adding watts to gigahertz.

False-positive policy: *dimensionless* values (literals, fractions,
normalized levels) are unit-polymorphic and never reported; *unknown*
values propagate silently.  A finding requires concrete, conflicting
units on both sides.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .interp import AV, Evaluator, Finding, Reporter
from .model import FunctionInfo, ProjectModel, name_tokens

__all__ = [
    "Unit",
    "DIMENSIONLESS",
    "unit_of_name",
    "UnitsEvaluator",
    "analyze_units",
    "UNIT_RULES",
]

UNIT_RULES = {
    "MAYA010": "mixed-unit arithmetic",
    "MAYA011": "wrong-unit call argument",
    "MAYA012": "wrong-unit return value",
    "MAYA013": "wrong-unit binding or comparison",
}


@dataclass(frozen=True)
class Unit:
    """A physical unit: sorted (dimension, exponent) pairs and a scale."""

    dims: Tuple[Tuple[str, int], ...] = ()
    scale: float = 1.0

    @property
    def is_dimensionless(self) -> bool:
        return not self.dims

    def mul(self, other: "Unit") -> "Unit":
        exps: Dict[str, int] = dict(self.dims)
        for sym, exp in other.dims:
            exps[sym] = exps.get(sym, 0) + exp
        dims = tuple(sorted((s, e) for s, e in exps.items() if e != 0))
        return Unit(dims=dims, scale=self.scale * other.scale)

    def inv(self) -> "Unit":
        return Unit(
            dims=tuple(sorted((s, -e) for s, e in self.dims)),
            scale=1.0 / self.scale,
        )

    def div(self, other: "Unit") -> "Unit":
        return self.mul(other.inv())

    def pow(self, k: int) -> "Unit":
        out = DIMENSIONLESS
        base = self if k >= 0 else self.inv()
        for _ in range(abs(k)):
            out = out.mul(base)
        return out

    def sqrt(self) -> Optional["Unit"]:
        if any(exp % 2 for _, exp in self.dims) or self.scale <= 0:
            return None
        return Unit(
            dims=tuple((s, e // 2) for s, e in self.dims),
            scale=math.sqrt(self.scale),
        )

    def same_dims(self, other: "Unit") -> bool:
        return self.dims == other.dims

    def compatible(self, other: "Unit") -> bool:
        return self.same_dims(other) and math.isclose(
            self.scale, other.scale, rel_tol=1e-9
        )

    def label(self) -> str:
        for unit, name in _NAMED_UNITS:
            if self.same_dims(unit) and math.isclose(self.scale, unit.scale, rel_tol=1e-9):
                return name
        if self.is_dimensionless:
            return "1"
        parts = []
        for sym, exp in self.dims:
            base = _DIM_LABELS.get(sym, sym)
            parts.append(base if exp == 1 else f"{base}^{exp}")
        rendered = "*".join(parts)
        if not math.isclose(self.scale, 1.0, rel_tol=1e-9):
            rendered = f"{self.scale:g}*{rendered}"
        return rendered


DIMENSIONLESS = Unit()
SECOND = Unit(dims=(("s", 1),))
MILLISECOND = Unit(dims=(("s", 1),), scale=1e-3)
HERTZ = Unit(dims=(("s", -1),))
MEGAHERTZ = Unit(dims=(("s", -1),), scale=1e6)
GIGAHERTZ = Unit(dims=(("s", -1),), scale=1e9)
JOULE = Unit(dims=(("j", 1),))
WATT = JOULE.div(SECOND)
VOLT = Unit(dims=(("v", 1),))
CELSIUS = Unit(dims=(("c", 1),))
BYTE = Unit(dims=(("byte", 1),))

_DIM_LABELS = {"s": "s", "j": "J", "v": "V", "c": "degC", "byte": "B"}

_NAMED_UNITS: Tuple[Tuple[Unit, str], ...] = (
    (WATT, "W"),
    (GIGAHERTZ, "GHz"),
    (MEGAHERTZ, "MHz"),
    (HERTZ, "Hz"),
    (SECOND, "s"),
    (MILLISECOND, "ms"),
    (JOULE, "J"),
    (VOLT, "V"),
    (CELSIUS, "degC"),
    (CELSIUS.div(WATT), "degC/W"),
    (DIMENSIONLESS, "1"),
)

#: Last-token -> unit.  Single-character tokens only fire when the name has
#: at least two tokens (``tdp_w`` yes, a matrix called ``w`` no).
_TOKEN_UNITS: Dict[str, Unit] = {
    "w": WATT,
    "watt": WATT,
    "watts": WATT,
    "power": WATT,
    "powers": WATT,
    "ghz": GIGAHERTZ,
    "mhz": MEGAHERTZ,
    "hz": HERTZ,
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "ms": MILLISECOND,
    "j": JOULE,
    "joule": JOULE,
    "joules": JOULE,
    "v": VOLT,
    "volt": VOLT,
    "volts": VOLT,
    "voltage": VOLT,
    "voltages": VOLT,
    "c": CELSIUS,
    "celsius": CELSIUS,
}

#: Tokens declaring a value explicitly unit-free (kept polymorphic).
_DIMENSIONLESS_TOKENS = frozenset(
    {
        "frac", "fraction", "fractions", "level", "levels", "norm",
        "normalized", "share", "efficiency", "rho", "activity",
        "activities", "ratio", "index", "idx", "count", "seed", "gain",
    }
)

#: Trailing qualifiers stripped before the unit lookup (``volt_min`` -> V).
_QUALIFIERS = frozenset(
    {
        "min", "max", "lo", "hi", "low", "high", "avg", "mean", "std",
        "tot", "total", "init", "prev", "next", "last", "first", "cur",
        "current", "ref", "cap", "limit", "floor", "ceil", "base", "step",
        "range", "span", "budget",
    }
)


def _unit_of_tokens(
    tokens: Tuple[str, ...], allow_bare_single: bool = False
) -> Optional[Unit]:
    toks = list(tokens)
    while len(toks) > 1 and toks[-1] in _QUALIFIERS:
        toks.pop()
    if not toks:
        return None
    last = toks[-1]
    if last in _DIMENSIONLESS_TOKENS:
        return DIMENSIONLESS
    unit = _TOKEN_UNITS.get(last)
    if unit is None:
        return None
    # A lone single-letter token ('w', 'c', ...) is too ambiguous to be a
    # unit by itself — except inside a ``_per_`` compound, where the
    # surrounding tokens disambiguate it.
    if len(last) == 1 and len(toks) < 2 and not allow_bare_single:
        return None
    return unit


def unit_of_name(name: str) -> Optional[Unit]:
    """Unit implied by an identifier, or None when the name is silent."""
    tokens = name_tokens(name)
    if not tokens:
        return None
    if "per" in tokens:
        split = tokens.index("per")
        num = _unit_of_tokens(tokens[:split], allow_bare_single=True)
        den = _unit_of_tokens(tokens[split + 1:], allow_bare_single=True)
        if num is not None and den is not None and den.dims:
            return num.div(den)
        return None
    return _unit_of_tokens(tokens)


def _concrete(payload: object) -> Optional[Unit]:
    """The payload as a reportable unit (concrete, non-dimensionless)."""
    if isinstance(payload, Unit) and payload.dims:
        return payload
    return None


def _join_lenient(payloads: Iterable[object]) -> Optional[Unit]:
    """Join where dimensionless values defer to a unique concrete unit."""
    concrete: List[Unit] = []
    saw_dimensionless = False
    for payload in payloads:
        if not isinstance(payload, Unit):
            return None
        if payload.dims:
            concrete.append(payload)
        else:
            saw_dimensionless = True
    if not concrete:
        return DIMENSIONLESS if saw_dimensionless else None
    first = concrete[0]
    if all(first.compatible(other) for other in concrete[1:]):
        return first
    return None


_PASSTHROUGH_CALLS = frozenset(
    {
        "float", "abs", "sum", "int", "round", "sorted", "reversed", "next",
        "numpy.asarray", "numpy.array", "numpy.abs", "numpy.round",
        "numpy.floor", "numpy.ceil", "numpy.atleast_1d", "numpy.ravel",
        "numpy.sum", "numpy.mean", "numpy.median", "numpy.std", "numpy.cumsum",
        "numpy.copy", "numpy.sort", "numpy.repeat", "numpy.tile",
        "numpy.concatenate", "numpy.stack", "numpy.diff", "numpy.float64",
        "math.floor", "math.ceil", "math.fabs", "copy.deepcopy", "copy.copy",
    }
)

_LENIENT_JOIN_CALLS = frozenset(
    {
        "min", "max", "numpy.clip", "numpy.minimum", "numpy.maximum",
        "numpy.linspace", "numpy.full", "numpy.where", "numpy.interp",
        "math.fmod", "numpy.hypot", "math.hypot",
    }
)

_DIMENSIONLESS_CALLS = frozenset(
    {
        "len", "bool", "numpy.exp", "numpy.log", "numpy.log2", "numpy.log10",
        "numpy.sin", "numpy.cos", "numpy.tan", "numpy.tanh", "numpy.sign",
        "numpy.isclose", "numpy.allclose", "numpy.isfinite", "numpy.isnan",
        "numpy.zeros", "numpy.ones", "numpy.arange", "numpy.argmin",
        "numpy.argmax", "numpy.searchsorted", "numpy.count_nonzero",
        "math.exp", "math.log", "math.log2", "math.sin", "math.cos",
        "math.tanh", "math.isclose", "math.isfinite", "math.isnan", "range",
        "enumerate", "isinstance", "hasattr", "any", "all",
    }
)

_SQRT_CALLS = frozenset({"numpy.sqrt", "math.sqrt"})

#: Methods on unknown receivers that preserve the receiver's unit.
_PASSTHROUGH_METHODS = frozenset(
    {
        "sum", "mean", "std", "min", "max", "copy", "astype", "round",
        "reshape", "flatten", "ravel", "cumsum", "item", "squeeze", "clip",
        "tolist", "pop",
    }
)

#: Methods whose result adopts the unique concrete unit among the args
#: (random draws parameterized by location/scale).
_ARG_JOIN_METHODS = frozenset({"normal", "uniform", "choice", "triangular"})

_DIMENSIONLESS_ATTRS = frozenset({"size", "shape", "ndim", "dtype", "nbytes"})

_OP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
}


class UnitsEvaluator(Evaluator):
    """Abstract interpreter whose payloads are :class:`Unit` values."""

    def __init__(self, model: ProjectModel, reporter: Reporter) -> None:
        super().__init__(model, reporter)
        self._summaries: Dict[tuple, AV] = {}
        self._in_progress = set()

    # -- lattice -------------------------------------------------------

    def join_payload(self, a: object, b: object) -> object:
        if a is None or b is None:
            return None
        if isinstance(a, Unit) and isinstance(b, Unit) and a.compatible(b):
            return a
        return None

    def const_payload(self, value: object) -> object:
        if isinstance(value, bool) or isinstance(value, (int, float)):
            return DIMENSIONLESS
        return None

    def string_payload(self, avs: List[AV]) -> object:
        return None

    # -- arithmetic ----------------------------------------------------

    def binop_payload(self, node: ast.BinOp, left: AV, right: AV, ctx) -> object:
        lu = left.payload if isinstance(left.payload, Unit) else None
        ru = right.payload if isinstance(right.payload, Unit) else None
        op = type(node.op)
        if op in (ast.Add, ast.Sub):
            cl, cr = _concrete(lu), _concrete(ru)
            if cl is not None and cr is not None and not cl.compatible(cr):
                self.reporter.report(
                    ctx.path,
                    node,
                    "MAYA010",
                    f"mixed-unit arithmetic: {cl.label()} "
                    f"{_OP_SYMBOLS.get(op, '?')} {cr.label()}",
                )
                return None
            if cl is not None:
                return cl
            if cr is not None:
                return cr
            if lu is not None and ru is not None:
                return DIMENSIONLESS
            return None
        if op is ast.Mult:
            if lu is not None and ru is not None:
                return lu.mul(ru)
            return None
        if op in (ast.Div, ast.FloorDiv):
            if lu is not None and ru is not None:
                return lu.div(ru)
            return None
        if op is ast.Mod:
            cl, cr = _concrete(lu), _concrete(ru)
            if cl is not None and cr is not None and not cl.compatible(cr):
                self.reporter.report(
                    ctx.path,
                    node,
                    "MAYA010",
                    f"mixed-unit arithmetic: {cl.label()} % {cr.label()}",
                )
                return None
            return lu
        if op is ast.Pow:
            if lu is None:
                return None
            exponent = node.right
            if isinstance(exponent, ast.Constant):
                value = exponent.value
                if isinstance(value, int) and not isinstance(value, bool):
                    return lu.pow(value)
                if isinstance(value, float) and math.isclose(value, 0.5):
                    return lu.sqrt()
            if lu.is_dimensionless:
                return DIMENSIONLESS
            return None
        return None

    def unary_payload(self, node: ast.UnaryOp, operand: AV, ctx) -> object:
        if isinstance(node.op, ast.Not):
            return DIMENSIONLESS
        return operand.payload

    def compare_payload(self, node: ast.Compare, operands: List[AV], ctx) -> object:
        ordered = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, ordered):
                continue
            cl = _concrete(left.payload if isinstance(left.payload, Unit) else None)
            cr = _concrete(right.payload if isinstance(right.payload, Unit) else None)
            if cl is not None and cr is not None and not cl.compatible(cr):
                self.reporter.report(
                    ctx.path,
                    node,
                    "MAYA013",
                    f"comparison between {cl.label()} and {cr.label()}",
                )
        return DIMENSIONLESS

    # -- names, params, attributes ------------------------------------

    def param_av(self, func: FunctionInfo, name: str) -> AV:
        base = super().param_av(func, name)
        return replace(base, payload=unit_of_name(name))

    def global_av(self, name: str, node: ast.AST, ctx) -> AV:
        return AV(payload=unit_of_name(name))

    def bind_name(self, name, value, node, env, ctx) -> None:
        declared = unit_of_name(name)
        actual = _concrete(value.payload if isinstance(value.payload, Unit) else None)
        if declared is not None and declared.dims:
            if actual is not None and not declared.compatible(actual):
                self.reporter.report(
                    ctx.path,
                    node,
                    "MAYA013",
                    f"binding {actual.label()} value to '{name}' "
                    f"(name implies {declared.label()})",
                )
            if actual is None:
                # Trust the declaration for unknown/polymorphic values.
                value = replace(value, payload=declared)
        env[name] = value

    def bind_attr(self, obj, attr, value, node, ctx) -> None:
        declared = unit_of_name(attr)
        actual = _concrete(value.payload if isinstance(value.payload, Unit) else None)
        if declared is not None and declared.dims and actual is not None:
            if not declared.compatible(actual):
                self.reporter.report(
                    ctx.path,
                    node,
                    "MAYA013",
                    f"binding {actual.label()} value to attribute '{attr}' "
                    f"(name implies {declared.label()})",
                )

    def attr_av(self, obj: AV, attr: str, node: ast.AST, ctx) -> AV:
        if attr in _DIMENSIONLESS_ATTRS:
            return AV(payload=DIMENSIONLESS)
        if attr in ("real", "T"):
            return AV(payload=obj.payload)
        cls = None
        if obj.cls is not None:
            cls = self._annotation_cls(self.model.field_annotation(obj.cls, attr))
        unit = unit_of_name(attr)
        if unit is not None and unit.dims:
            return AV(payload=unit, cls=cls)
        if obj.cls is not None:
            table = self.eval_attr_sites(obj.cls, attr)
            if table is not None:
                if cls is not None and table.cls is None:
                    table = replace(table, cls=cls)
                return table
        return AV(payload=unit, cls=cls)

    # -- returns -------------------------------------------------------

    def on_return(self, value: AV, node: ast.AST, ctx) -> None:
        name = getattr(ctx, "name", "")
        declared = unit_of_name(name) if name else None
        if declared is None or not declared.dims:
            return
        actual = _concrete(value.payload if isinstance(value.payload, Unit) else None)
        if actual is not None and not declared.compatible(actual):
            self.reporter.report(
                ctx.path,
                node,
                "MAYA012",
                f"'{name}' returns {actual.label()} "
                f"(name implies {declared.label()})",
            )

    # -- calls ---------------------------------------------------------

    def _check_args(self, node, owner: str, params, args_map, ctx) -> None:
        for param, (arg_node, av) in sorted(args_map.items()):
            declared = unit_of_name(param)
            if declared is None or not declared.dims:
                continue
            actual = _concrete(av.payload if isinstance(av.payload, Unit) else None)
            if actual is not None and not declared.compatible(actual):
                self.reporter.report(
                    ctx.path,
                    arg_node,
                    "MAYA011",
                    f"argument '{param}' of {owner} expects "
                    f"{declared.label()}, got {actual.label()}",
                )

    def call_project(self, node, finfo, bound, args_map, arg_avs, complete, ctx) -> AV:
        self._check_args(node, finfo.name, finfo.params, args_map, ctx)
        env = self.seed_env(finfo, bound)
        for param, (_arg_node, av) in args_map.items():
            declared = env.get(param, AV())
            payload = av.payload
            if _concrete(payload if isinstance(payload, Unit) else None) is None:
                payload = declared.payload
            env[param] = replace(av, payload=payload, cls=av.cls or declared.cls)
        key = (
            finfo.qualname,
            bound.cls if bound is not None else None,
            tuple((p, env[p].payload, env[p].cls) for p in sorted(env) if p != "self"),
        )
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return AV(cls=self._annotation_cls(finfo.return_annotation))
        self._in_progress.add(key)
        self.reporter.mute()
        try:
            result = self.exec_function(finfo, env)
        finally:
            self.reporter.unmute()
            self._in_progress.discard(key)
        if result.cls is None:
            result = replace(
                result, cls=self._annotation_cls(finfo.return_annotation)
            )
        if _concrete(result.payload if isinstance(result.payload, Unit) else None) is None:
            declared_ret = unit_of_name(finfo.name)
            if declared_ret is not None and declared_ret.dims:
                result = replace(result, payload=declared_ret)
        self._summaries[key] = result
        return result

    def call_constructor(self, node, class_name, args_map, arg_avs, complete, ctx) -> AV:
        self._check_args(node, class_name, tuple(args_map), args_map, ctx)
        return AV(cls=class_name)

    def call_external(self, node, dotted, receiver, arg_avs, env, ctx) -> AV:
        bare = dotted.rsplit(".", 1)[-1]
        first = arg_avs[0].payload if arg_avs else None
        # Unit-preserving methods win over same-named free functions:
        # ``powers.sum(axis=0)`` keeps the receiver's unit (the axis
        # argument is dimensionless and must not leak into the result).
        if receiver is not None and bare in _PASSTHROUGH_METHODS:
            return AV(payload=receiver.payload)
        if dotted in _PASSTHROUGH_CALLS or bare in _PASSTHROUGH_CALLS:
            return AV(payload=first)
        if dotted in _LENIENT_JOIN_CALLS or bare in _LENIENT_JOIN_CALLS:
            return AV(payload=_join_lenient(av.payload for av in arg_avs))
        if dotted in _DIMENSIONLESS_CALLS or bare in _DIMENSIONLESS_CALLS:
            return AV(payload=DIMENSIONLESS)
        if dotted in _SQRT_CALLS:
            if isinstance(first, Unit):
                return AV(payload=first.sqrt())
            return AV()
        if receiver is not None:
            if bare in _PASSTHROUGH_METHODS:
                return AV(payload=receiver.payload)
            if bare in _ARG_JOIN_METHODS:
                return AV(payload=_join_lenient(av.payload for av in arg_avs))
            if bare in ("argmin", "argmax", "nonzero"):
                return AV(payload=DIMENSIONLESS)
        return AV()

    # -- driver --------------------------------------------------------

    def analyze(self) -> None:
        for finfo in self.model.functions:
            env = self.seed_env(finfo)
            self.exec_function(finfo, env)


def analyze_units(model: ProjectModel) -> List[Finding]:
    """Run the unit checker over a project model; sorted findings."""
    reporter = Reporter()
    UnitsEvaluator(model, reporter).analyze()
    return sorted(reporter.findings)
