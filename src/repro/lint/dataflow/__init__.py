"""Interprocedural dataflow analyses for the MAYA linter.

Built on the engine's single-parse pipeline: every module is parsed once,
indexed into a :class:`~repro.lint.dataflow.model.ProjectModel`, and walked
by an abstract interpreter (:mod:`~repro.lint.dataflow.interp`) with
per-function summaries.  Two analysis families ride on it:

* :mod:`~repro.lint.dataflow.units` — physical-unit inference from the
  repo's naming conventions (MAYA010-MAYA013);
* :mod:`~repro.lint.dataflow.taint` — secret-taint certification of the
  mask/control packages (MAYA020-MAYA022) plus the JSON leakage
  certificate;
* :mod:`~repro.lint.dataflow.numeric` — reassociation-safety analysis of
  the simulation hot paths (MAYA040-MAYA043) plus the per-module
  ``maya.lint.numeric-certificate.v1``;
* :mod:`~repro.lint.dataflow.purity` — purity & cache-salt soundness
  certification of the simulation closure (MAYA050-MAYA053) plus the
  per-entry-point ``maya.lint.purity-certificate.v1``.
"""

from .interp import AV, Evaluator, Finding, Reporter
from .model import ModuleCtx, ProjectModel, name_tokens
from .numeric import (
    CERT_SCHEMA,
    NUMERIC_RULES,
    NumericEvaluator,
    NumVal,
    analyze_numeric,
    numeric_certificates,
)
from .purity import (
    PURITY_CERT_SCHEMA,
    PURITY_RULES,
    PurityEvaluator,
    analyze_purity,
    purity_certificates,
)
from .rules import ANALYSES, DataflowContext, DataflowRule, all_dataflow_rule_ids, dataflow_rules
from .taint import (
    DECLASSIFIER_NAMES,
    SECRET,
    TAINT_RULES,
    TaintEvaluator,
    analyze_taint,
    is_source_name,
    leakage_certificate,
)
from .units import DIMENSIONLESS, UNIT_RULES, Unit, UnitsEvaluator, analyze_units, unit_of_name

__all__ = [
    "AV",
    "Evaluator",
    "Finding",
    "Reporter",
    "ModuleCtx",
    "ProjectModel",
    "name_tokens",
    "CERT_SCHEMA",
    "NUMERIC_RULES",
    "NumericEvaluator",
    "NumVal",
    "analyze_numeric",
    "numeric_certificates",
    "PURITY_CERT_SCHEMA",
    "PURITY_RULES",
    "PurityEvaluator",
    "analyze_purity",
    "purity_certificates",
    "ANALYSES",
    "DataflowContext",
    "DataflowRule",
    "all_dataflow_rule_ids",
    "dataflow_rules",
    "DECLASSIFIER_NAMES",
    "SECRET",
    "TAINT_RULES",
    "TaintEvaluator",
    "analyze_taint",
    "is_source_name",
    "leakage_certificate",
    "DIMENSIONLESS",
    "UNIT_RULES",
    "Unit",
    "UnitsEvaluator",
    "analyze_units",
    "unit_of_name",
]
