"""Purity & cache-salt soundness certification (MAYA050-MAYA053).

Every result in this repo flows through the content-addressed trace
cache, whose soundness rests on three hand-maintained promises:

1. the ``_SIMULATION_PACKAGES`` salt in ``repro.exec.jobs`` covers every
   module whose code a simulated session can execute;
2. sim-reachable code reads nothing ambient (environment variables,
   files, clocks, global RNG state) that is not part of the
   :class:`~repro.exec.jobs.SessionJob` description;
3. every job field that influences the trace flows into
   ``SessionJob.key()``'s digest.

This analysis proves those promises statically, the same way the
reassociation-safety pass (:mod:`.numeric`) certifies the batched twins.
It computes the import/call closure of the simulation entry points —
``execute_job``/``execute_jobs_batched`` plus every ``# maya:
batch-twin(...)`` batched implementation — over the shared abstract
interpreter and layers four rules on the closure:

* **MAYA050** — sim-reachable code reads ambient state (``os.environ``,
  file reads, locale/platform/time, global RNG) not captured in the job
  content address; identical jobs could cache different traces;
* **MAYA051** — a module in the sim closure is missing from the
  ``_SIMULATION_PACKAGES`` salt (editing it would not invalidate cached
  traces), or a declared salt entry covers no reachable code (a dead or
  typo'd entry giving false confidence);
* **MAYA052** — sim-reachable code mutates a module-level container or a
  class attribute after init (cross-session contamination: state written
  by one cached session leaks into the next);
* **MAYA053** — a job field is read on a trace-influencing path but never
  flows into the ``key()`` digest, so two jobs differing only in that
  field collide in the cache.

Modules that *must* sit outside the purity contract are enumerated as
waivers rather than silently skipped: the salt-defining module itself
(``code_salt()`` digests the salted sources by design), ``exec/batch.py``
(excluded from the salt; pinned instead by the MAYA043 batch-twin
bit-identity certificates), and ``repro.telemetry`` (out-of-band by the
MAYA032 contract).  Their ambient reads and mutations are still recorded
— in the certificate, not as findings.

The result is one ``maya.lint.purity-certificate.v1`` per entry point
(committed under ``certs/purity/``, regenerated and byte-compared by CI)
carrying the closure module list, the salt-coverage verdict, the waiver
inventory, and the job-key field accounting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .interp import AV, Evaluator, Finding, Reporter
from .model import FunctionInfo, ProjectModel
from .numeric import _BATCH_TWIN_RE, module_name

__all__ = [
    "PURITY_RULES",
    "PURITY_CERT_SCHEMA",
    "PurityEvaluator",
    "analyze_purity",
    "purity_certificates",
]

PURITY_RULES = {
    "MAYA050": "sim-reachable code reads ambient state outside the job key",
    "MAYA051": "simulation closure and _SIMULATION_PACKAGES salt disagree",
    "MAYA052": "sim-reachable mutation of module-level or class state",
    "MAYA053": "job field influences the trace but not the key() digest",
}

PURITY_CERT_SCHEMA = "maya.lint.purity-certificate.v1"

#: Function names treated as simulation entry points (module level).
_ENTRY_NAMES = frozenset({"execute_job", "execute_jobs_batched"})

#: The salt assignment the analysis certifies against.
_SALT_NAME = "_SIMULATION_PACKAGES"

# ---------------------------------------------------------------------------
# Ambient-state tables (MAYA050)
# ---------------------------------------------------------------------------

#: Attribute chains that *are* ambient state the moment they are read.
_AMBIENT_ATTRS = frozenset(
    {
        "os.environ",
        "os.environb",
        "sys.argv",
        "sys.platform",
        "sys.path",
        "sys.version",
        "sys.version_info",
        "sys.flags",
        "sys.stdin",
    }
)

#: Fully dotted calls that sample ambient state.
_AMBIENT_CALLS = frozenset(
    {
        "os.getenv",
        "os.getenvb",
        "os.getcwd",
        "os.getcwdb",
        "os.cpu_count",
        "os.uname",
        "os.getpid",
        "os.getppid",
        "os.getlogin",
        "os.urandom",
        "os.listdir",
        "os.scandir",
        "os.stat",
        "os.walk",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "builtins.open",
        "builtins.input",
    }
)

#: Import roots where *any* call samples ambient state (none of these are
#: in the interpreter's EXTERNAL_ROOTS, so they resolve via global_av).
_AMBIENT_ROOTS = frozenset(
    {
        "locale",
        "platform",
        "socket",
        "getpass",
        "random",
        "secrets",
        "uuid",
        "tempfile",
        "subprocess",
        "shutil",
        "glob",
    }
)

#: Path-like read methods (receiver form: ``path.read_bytes()``).
_PATH_READS = frozenset({"read_text", "read_bytes", "rglob", "glob", "iterdir"})

#: numpy's module-level RNG surface (global hidden state).  A seeded
#: ``default_rng(seed)`` is pure; a bare ``default_rng()`` is ambient.
_GLOBAL_RNG = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "normal", "uniform", "choice", "shuffle", "permutation",
        "seed", "standard_normal", "get_state", "set_state",
    }
)

#: Container mutators (MAYA052) when invoked on module-level state.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "appendleft",
    }
)

#: Module suffixes waived out of the purity contract, with the covering
#: contract spelled out.  The salt-defining module and the root package
#: facade are waived dynamically (see :meth:`PurityEvaluator._waiver_for`).
_STATIC_WAIVERS: Tuple[Tuple[str, str], ...] = (
    (
        "exec.batch",
        "excluded from the salt by design; covered by the serial/batched "
        "bit-identity contract pinned by the MAYA043 batch-twin certificates",
    ),
    (
        "telemetry",
        "out-of-band observability: the MAYA032 contract certifies no "
        "telemetry value flows back into simulation state",
    ),
)

_SALT_WAIVER_REASON = (
    "defines the salt: code_salt() digests the salted sources and the "
    "per-process factory memo is keyed on the full declarative description"
)
_FACADE_WAIVER_REASON = (
    "top-level package facade: re-exports only; every simulation "
    "definition lives in a salted package"
)

#: Marks an abstract value as a project-module object (``ext`` prefix).
_PROJ = "project-module:"


@dataclass(frozen=True)
class PurVal:
    """Purity lattice element: identity of a module-level binding, so
    aliased mutations (``t = TABLE; t.update(...)``) are still caught."""

    origin: Optional[Tuple[str, str]] = None  # (module path, name)


@dataclass
class _SaltDef:
    """One ``_SIMULATION_PACKAGES`` assignment and its resolved geometry."""

    path: str
    node: ast.AST
    entries: Tuple[str, ...]
    root: str = ""  # directory the entries are relative to


class PurityEvaluator(Evaluator):
    """Interprocedural effect-and-reachability closure over the entries."""

    def __init__(
        self,
        model: ProjectModel,
        reporter: Reporter,
        sources: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        super().__init__(model, reporter)
        self._sources = sources or {}
        # Entry points: (display name, FunctionInfo).
        self.entries: List[Tuple[str, FunctionInfo]] = []
        # Worklist state.
        self._queue: List[FunctionInfo] = []
        self._seen: Set[str] = set()
        self._walked: Set[str] = set()
        self._cur_qual: Optional[str] = None
        # Reachability graph: caller qualname -> callee qualnames, and the
        # module contributions (constructed classes, module refs) per caller.
        self._edges: Dict[str, Set[str]] = {}
        self._func_module: Dict[str, str] = {}
        self._extra_modules: Dict[str, Set[str]] = {}
        # Rapid-type-analysis state for virtual dispatch: only classes the
        # walked code actually constructs receive method calls resolved on
        # a base class, so a Defense subclass in an unreachable experiment
        # does not drag its module into the closure.
        self._constructed: Set[str] = set()
        self._virtual_sites: Set[Tuple[str, str]] = set()
        # Effects, keyed for dedup: (module, line, detail).
        self._ambient: Dict[bool, List[dict]] = {False: [], True: []}
        self._mutations: Dict[bool, List[dict]] = {False: [], True: []}
        self._effect_seen: Set[Tuple[str, str, int, str]] = set()
        # MAYA053 state: every job class (a class with a ``key()`` digest)
        # reachable from an entry's first parameter, with per-class field
        # accounting so a corpus with several job types certifies each.
        self._job_classes: Dict[str, Tuple[str, ...]] = {}
        self._entry_job_cls: Dict[str, Optional[str]] = {}
        self._key_fns: Dict[str, FunctionInfo] = {}
        self._in_digest = False
        self._digest_quals: Set[str] = set()
        self._hashed: Dict[str, Set[str]] = {}
        self._read: Dict[str, Set[str]] = {}
        # Salt state.
        self.salt_defs: List[_SaltDef] = []
        self.salt_covered: Set[str] = set()
        self.salt_unsalted: Set[str] = set()
        self.salt_dead: Dict[str, List[str]] = {}
        # Import-resolution caches.
        self._import_cache: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def analyze(self) -> None:
        self._collect_entries()
        if not self.entries:
            return
        self._collect_salt_defs()
        self._find_job_classes()
        # Phase 1: the digest closure — field reads here count as *hashed*.
        for cls_name in sorted(self._job_classes):
            for name in ("key", "describe"):
                fn = self.model.resolve_method(cls_name, name)
                if fn is not None:
                    if name == "key":
                        self._key_fns[cls_name] = fn
                    self._push(fn)
        self._in_digest = True
        self._drain()
        self._digest_quals = set(self._walked)
        self._in_digest = False
        # Phase 2: the full simulation closure from every entry point.
        for _display, fn in self.entries:
            self._push(fn)
        self._drain()
        self._check_salt()
        self._check_job_key()

    def _drain(self) -> None:
        while self._queue:
            fn = self._queue.pop(0)
            if fn.qualname in self._walked:
                continue
            self._walked.add(fn.qualname)
            self._cur_qual = fn.qualname
            try:
                self._scan_global_decls(fn)
                self.exec_function(fn, self.seed_env(fn))
            finally:
                self._cur_qual = None

    def _push(self, fn: FunctionInfo) -> None:
        qual = fn.qualname
        self._func_module[qual] = fn.path
        if self._cur_qual is not None:
            self._edges.setdefault(self._cur_qual, set()).add(qual)
        if qual not in self._seen:
            self._seen.add(qual)
            self._queue.append(fn)

    def _touch_module(self, path: str) -> None:
        if self._cur_qual is not None:
            self._extra_modules.setdefault(self._cur_qual, set()).add(path)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def _display(self, fn: FunctionInfo) -> str:
        return f"{fn.class_name}.{fn.name}" if fn.class_name else fn.name

    def _collect_entries(self) -> None:
        ordered: List[Tuple[str, FunctionInfo]] = []
        for fn in self.model.functions:
            if fn.class_name is None and fn.name in _ENTRY_NAMES:
                ordered.append((self._display(fn), fn))
        for fn in self.model.functions:
            lines = self._sources.get(fn.path)
            if not lines:
                continue
            start = fn.node.lineno
            for decorator in getattr(fn.node, "decorator_list", ()):
                start = min(start, decorator.lineno)
            for idx in range(max(0, start - 2), min(len(lines), fn.node.lineno)):
                if _BATCH_TWIN_RE.search(lines[idx]):
                    ordered.append((self._display(fn), fn))
                    break
        seen: Set[str] = set()
        for display, fn in ordered:
            if fn.qualname not in seen:
                seen.add(fn.qualname)
                self.entries.append((display, fn))

    def _is_job_class(self, cls_name: Optional[str]) -> bool:
        return (
            cls_name is not None
            and self.model.class_named(cls_name) is not None
            and self.model.resolve_method(cls_name, "key") is not None
        )

    def _class_fields(self, cls_name: str) -> Tuple[str, ...]:
        fields = self.model.dataclass_fields(cls_name)
        if not fields:
            # dataclass_fields() keys off the bare @dataclass decorator;
            # the call form (@dataclass(frozen=True)) hides it, but the
            # annotated class-body fields are the same inventory.
            cls = self.model.class_named(cls_name)
            if cls is not None:
                fields = tuple(cls.field_ann)
        return fields

    def _find_job_classes(self) -> None:
        """Map each entry to its job class (a class with a ``key()``).

        The class comes from the entry's first parameter annotation; twins
        whose first parameter is not a job (a power model, a defense
        fleet) fall back to the project-wide default so every certificate
        carries the same accounting it is actually protected by.
        """
        default = "SessionJob" if self._is_job_class("SessionJob") else None
        for _display, fn in self.entries:
            cls = None
            if fn.params:
                cls = self._annotation_cls(fn.annotations.get(fn.params[0], ()))
            if not self._is_job_class(cls):
                cls = default
            self._entry_job_cls[fn.qualname] = cls
            if cls is not None and cls not in self._job_classes:
                self._job_classes[cls] = self._class_fields(cls)
                self._hashed[cls] = set()
                self._read[cls] = set()

    # ------------------------------------------------------------------
    # Waivers
    # ------------------------------------------------------------------

    def _waiver_for(self, path: str) -> Optional[Tuple[str, str]]:
        """(matched suffix, reason) when ``path`` sits outside the purity
        contract; the certificate enumerates every applied waiver."""
        if any(d.path == path for d in self.salt_defs):
            return (module_name(path), _SALT_WAIVER_REASON)
        for d in self.salt_defs:
            if d.root and path == f"{d.root}/__init__.py":
                return (module_name(path), _FACADE_WAIVER_REASON)
        parts = module_name(path).split(".")
        for suffix, reason in _STATIC_WAIVERS:
            sparts = suffix.split(".")
            for i in range(len(parts) - len(sparts) + 1):
                if parts[i : i + len(sparts)] == sparts:
                    return (suffix, reason)
        return None

    # ------------------------------------------------------------------
    # Effects: MAYA050 (ambient reads) and MAYA052 (mutations)
    # ------------------------------------------------------------------

    def _record_effect(self, kind: str, node: ast.AST, ctx, detail: str, message: str) -> None:
        if self.reporter.muted:
            # Muted evaluations (arg re-eval, module-level expressions, our
            # own attribute pre-scans) are always followed or preceded by an
            # unmuted pass over the same site; recording here would mark the
            # site seen and swallow the real finding.
            return
        path = getattr(ctx, "path", "")
        mod = self.model.modules.get(path)
        if mod is None:
            return
        line = getattr(node, "lineno", 1)
        key = (kind, path, line, detail)
        if key in self._effect_seen:
            return
        self._effect_seen.add(key)
        waiver = self._waiver_for(path)
        entry = {"module": module_name(path), "line": line, "detail": detail}
        bucket = self._ambient if kind == "ambient" else self._mutations
        if waiver is not None:
            bucket[True].append(entry)
        else:
            bucket[False].append(entry)
            rule = "MAYA050" if kind == "ambient" else "MAYA052"
            self.reporter.report(path, node, rule, message)

    def _check_ambient_value(self, av: AV, node: ast.AST, ctx) -> None:
        if av.ext in _AMBIENT_ATTRS:
            self._record_effect(
                "ambient",
                node,
                ctx,
                av.ext,
                f"sim-reachable code reads ambient state '{av.ext}' that is "
                f"not captured in the job content address; identical "
                f"SessionJobs could cache different traces",
            )

    def _classify_ambient_call(self, dotted: str, receiver: Optional[AV], arg_avs) -> Optional[str]:
        if not dotted:
            return None
        if dotted.startswith(_PROJ):
            return None
        bare = dotted.rsplit(".", 1)[-1]
        if dotted in ("open", "input"):
            return f"builtins.{dotted}"
        if "." in dotted:
            if any(dotted == a or dotted.startswith(a + ".") for a in _AMBIENT_ATTRS):
                return None  # already reported at the attribute read
            if dotted in _AMBIENT_CALLS:
                return dotted
            root = dotted.split(".", 1)[0]
            if root in _AMBIENT_ROOTS:
                return dotted
            if ".random." in f".{dotted}." and bare in _GLOBAL_RNG:
                return dotted  # numpy.random module-level (hidden global state)
            if dotted.endswith(".random.default_rng") and not arg_avs:
                return dotted + " (unseeded)"
        elif receiver is not None and bare in _PATH_READS:
            return f"<receiver>.{bare}"
        return None

    def call_external(self, node, dotted, receiver, arg_avs, env, ctx) -> AV:
        detail = self._classify_ambient_call(dotted, receiver, arg_avs)
        if detail is not None:
            self._record_effect(
                "ambient",
                node,
                ctx,
                detail,
                f"sim-reachable code reads ambient state via '{detail}' "
                f"outside the job content address; identical SessionJobs "
                f"could cache different traces",
            )
        bare = dotted.rsplit(".", 1)[-1] if dotted else ""
        if (
            bare in _MUTATOR_METHODS
            and receiver is not None
            and isinstance(receiver.payload, PurVal)
            and receiver.payload.origin is not None
        ):
            opath, oname = receiver.payload.origin
            self._record_effect(
                "mutation",
                node,
                ctx,
                f"{module_name(opath)}.{oname}.{bare}",
                f"sim-reachable code mutates module-level state "
                f"'{oname}' (defined in {module_name(opath)}) via "
                f".{bare}(); cached sessions would contaminate each other",
            )
        if self._in_digest and dotted.endswith("asdict"):
            for av in arg_avs:
                if av.cls in self._job_classes:
                    self._hashed[av.cls].update(self._job_classes[av.cls])
        return AV()

    def on_call(self, node, callee_name, arg_avs, ctx) -> None:
        # Function references escaping as call arguments stay reachable.
        for av in arg_avs:
            if av.func is not None:
                self._push(av.func)
            if av.elems:
                for el in av.elems:
                    if el.func is not None:
                        self._push(el.func)

    def bind_attr(self, obj: AV, attr: str, value: AV, node, ctx) -> None:
        if obj.ctor is not None and self.model.class_named(obj.ctor) is not None:
            self._record_effect(
                "mutation",
                node,
                ctx,
                f"{obj.ctor}.{attr}",
                f"sim-reachable code assigns class attribute "
                f"'{obj.ctor}.{attr}' after init; the new value persists "
                f"across sessions in the same process",
            )
        elif isinstance(obj.payload, PurVal) and obj.payload.origin is not None:
            opath, oname = obj.payload.origin
            self._record_effect(
                "mutation",
                node,
                ctx,
                f"{module_name(opath)}.{oname}.{attr}",
                f"sim-reachable code stores attribute '{attr}' on "
                f"module-level object '{oname}' (defined in "
                f"{module_name(opath)}); cached sessions would contaminate "
                f"each other",
            )

    def _bind_target(self, target, value, stmt, env, ctx) -> None:
        if isinstance(target, ast.Subscript):
            self.reporter.mute()
            try:
                obj = self.eval(target.value, env, ctx)
            finally:
                self.reporter.unmute()
            if isinstance(obj.payload, PurVal) and obj.payload.origin is not None:
                opath, oname = obj.payload.origin
                self._record_effect(
                    "mutation",
                    stmt,
                    ctx,
                    f"{module_name(opath)}.{oname}[...]",
                    f"sim-reachable code stores into module-level container "
                    f"'{oname}' (defined in {module_name(opath)}); cached "
                    f"sessions would contaminate each other",
                )
        super()._bind_target(target, value, stmt, env, ctx)

    def _scan_global_decls(self, fn: FunctionInfo) -> None:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    self._record_effect(
                        "mutation",
                        node,
                        fn,
                        f"global {name}",
                        f"sim-reachable function '{self._display(fn)}' "
                        f"rebinds module global '{name}'; cached sessions "
                        f"would contaminate each other",
                    )

    # ------------------------------------------------------------------
    # Value resolution overrides
    # ------------------------------------------------------------------

    def module_global(self, path: str, name: str) -> AV:
        av = super().module_global(path, name)
        return replace(av, payload=PurVal(origin=(path, name)))

    def global_av(self, name, node, ctx) -> AV:
        mod = self.model.modules.get(getattr(ctx, "path", ""))
        if mod is not None and name in mod.aliases:
            target = mod.aliases[name]
            mpath = self._resolve_module(target, ctx.path)
            if mpath is not None:
                self._touch_module(mpath)
                return AV(ext=_PROJ + mpath)
            root = target.split(".", 1)[0]
            if root in _AMBIENT_ROOTS:
                return AV(ext=target)
        return AV()

    def _eval_name(self, node, env, ctx) -> AV:
        av = super()._eval_name(node, env, ctx)
        if av.func is not None:
            self._push(av.func)
        self._check_ambient_value(av, node, ctx)
        return av

    def _eval_attribute(self, node, env, ctx) -> AV:
        self.reporter.mute()
        try:
            obj = self.eval(node.value, env, ctx)
        finally:
            self.reporter.unmute()
        attr = node.attr
        # Attribute access through a project-module reference.
        if obj.ext is not None and obj.ext.startswith(_PROJ):
            mpath = obj.ext[len(_PROJ):]
            target_mod = self.model.modules.get(mpath)
            if target_mod is not None:
                self._touch_module(mpath)
                if attr in target_mod.functions:
                    fn = target_mod.functions[attr]
                    self._push(fn)
                    return AV(func=fn)
                if attr in target_mod.classes:
                    return AV(ctor=attr)
                if attr in target_mod.assigns:
                    return self.module_global(mpath, attr)
            return AV()
        # MAYA053: reads of job fields outside the digest closure.
        if obj.cls in self._job_classes and attr in self._job_classes[obj.cls]:
            if self._in_digest or self._cur_qual in self._digest_quals:
                self._hashed[obj.cls].add(attr)
            else:
                self._read[obj.cls].add(attr)
        av = super()._eval_attribute(node, env, ctx)
        self._check_ambient_value(av, node, ctx)
        return av

    def call_project(self, node, finfo, bound, args_map, arg_avs, complete, ctx) -> AV:
        self._push(finfo)
        if finfo.class_name is not None and not finfo.name.startswith("__"):
            site = (finfo.class_name, finfo.name)
            if site not in self._virtual_sites:
                self._virtual_sites.add(site)
                for cls_name in tuple(self._constructed):
                    self._dispatch(cls_name, finfo.class_name, finfo.name)
        return AV(cls=self._annotation_cls(finfo.return_annotation))

    def call_constructor(self, node, class_name, args_map, arg_avs, complete, ctx) -> AV:
        cls = self.model.class_named(class_name)
        if cls is not None:
            self._touch_module(cls.path)
            if class_name not in self._constructed:
                self._constructed.add(class_name)
                for base, method in tuple(self._virtual_sites):
                    self._dispatch(class_name, base, method)
            for method_name in ("__init__", "__post_init__"):
                method = self.model.resolve_method(class_name, method_name)
                if method is not None:
                    self._push(method)
        return AV(cls=class_name)

    def _dispatch(self, cls_name: str, base: str, method: str) -> None:
        """Push the override a virtual ``base.method`` call reaches on a
        constructed instance of ``cls_name`` (no-op unless it subclasses)."""
        if not any(c.name == base for c in self.model.mro(cls_name)):
            return
        resolved = self.model.resolve_method(cls_name, method)
        if resolved is not None:
            self._push(resolved)

    # ------------------------------------------------------------------
    # Import closure and module resolution
    # ------------------------------------------------------------------

    def _dotted(self, path: str) -> str:
        return module_name(path)

    def _resolve_module(self, target: str, importer: str) -> Optional[str]:
        """Project-module path an import target refers to, or None.

        Tries each dotted prefix of ``target`` (longest first) against the
        modules' dotted names; suffix matches break ties by preferring the
        candidate sharing the longest path prefix with the importer
        (relative imports lose their level in the alias map).
        """
        parts = target.split(".")
        for k in range(len(parts), 0, -1):
            cand = ".".join(parts[:k])
            hits = [
                path
                for path in self.model.modules
                if self._dotted(path) == cand or self._dotted(path).endswith("." + cand)
            ]
            if not hits:
                continue
            if len(hits) == 1:
                return hits[0]

            def _affinity(path: str) -> int:
                common = 0
                for a, b in zip(path.split("/"), importer.split("/")):
                    if a != b:
                        break
                    common += 1
                return common

            hits.sort(key=_affinity, reverse=True)
            if _affinity(hits[0]) > _affinity(hits[1]):
                return hits[0]
            return None  # ambiguous: stay under-approximate
        return None

    def _module_imports(self, path: str) -> Set[str]:
        cached = self._import_cache.get(path)
        if cached is not None:
            return cached
        out: Set[str] = set()
        mod = self.model.modules.get(path)
        if mod is not None:
            for target in set(mod.aliases.values()):
                resolved = self._resolve_module(target, path)
                if resolved is not None:
                    out.add(resolved)
        self._import_cache[path] = out
        return out

    def _call_closure_modules(self, entry: FunctionInfo) -> Set[str]:
        mods: Set[str] = set()
        seen: Set[str] = set()
        queue = [entry.qualname]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            if qual in self._func_module:
                mods.add(self._func_module[qual])
            mods.update(self._extra_modules.get(qual, ()))
            queue.extend(self._edges.get(qual, ()))
        return mods

    def _import_closure(self, mods: Set[str]) -> Set[str]:
        out = set(mods)
        queue = list(mods)
        while queue:
            path = queue.pop()
            for imported in self._module_imports(path):
                if imported not in out:
                    out.add(imported)
                    queue.append(imported)
        return out

    def closure_for(self, entry: FunctionInfo) -> Set[str]:
        return self._import_closure(self._call_closure_modules(entry))

    def union_closure(self) -> Set[str]:
        mods: Set[str] = set()
        for _display, fn in self.entries:
            mods |= self._call_closure_modules(fn)
        for key_fn in self._key_fns.values():
            mods |= self._call_closure_modules(key_fn)
        return self._import_closure(mods)

    # ------------------------------------------------------------------
    # MAYA051: salt coverage
    # ------------------------------------------------------------------

    def _collect_salt_defs(self) -> None:
        for path in sorted(self.model.modules):
            mod = self.model.modules[path]
            expr = mod.assigns.get(_SALT_NAME)
            if expr is None:
                continue
            if not isinstance(expr, (ast.Tuple, ast.List)):
                continue
            entries = []
            for el in expr.elts:
                if isinstance(el, ast.Constant) and isinstance(el.value, str):
                    entries.append(el.value)
            self.salt_defs.append(_SaltDef(path=path, node=expr, entries=tuple(entries)))

    def _resolve_salt_roots(self) -> None:
        """Entries are paths relative to the package root directory — find
        it by scoring each ancestor of the defining module against them."""
        all_paths = list(self.model.modules)
        for d in self.salt_defs:
            segments = d.path.split("/")[:-1]
            best, best_score = "", -1
            for up in range(len(segments), 0, -1):
                root = "/".join(segments[:up])
                score = sum(
                    1
                    for entry in d.entries
                    if any(
                        p.startswith(f"{root}/{entry}/") or p == f"{root}/{entry}.py"
                        for p in all_paths
                    )
                )
                if score > best_score:
                    best, best_score = root, score
            d.root = best

    def _claiming_def(self, path: str) -> Optional[_SaltDef]:
        best: Optional[_SaltDef] = None
        for d in self.salt_defs:
            prefix = d.root + "/" if d.root else ""
            if path.startswith(prefix):
                if best is None or len(d.root) > len(best.root):
                    best = d
        return best

    def _check_salt(self) -> None:
        if not self.salt_defs:
            return
        self._resolve_salt_roots()
        closure = self.union_closure()
        live_entries: Dict[Tuple[str, str], bool] = {}
        for d in self.salt_defs:
            for entry in d.entries:
                live_entries[(d.path, entry)] = False
        for path in sorted(closure):
            d = self._claiming_def(path)
            if d is None:
                continue
            covering = None
            for entry in d.entries:
                if path.startswith(f"{d.root}/{entry}/") or path == f"{d.root}/{entry}.py":
                    covering = entry
                    break
            if covering is not None:
                live_entries[(d.path, covering)] = True
                self.salt_covered.add(path)
                continue
            if self._waiver_for(path) is not None:
                continue
            self.salt_unsalted.add(path)
            self.reporter.report(
                d.path,
                d.node,
                "MAYA051",
                f"module '{module_name(path)}' is reachable from the "
                f"simulation entry points but missing from "
                f"{_SALT_NAME}; editing it would not invalidate cached "
                f"traces",
            )
        for d in self.salt_defs:
            dead = [e for e in d.entries if not live_entries[(d.path, e)]]
            if dead:
                self.salt_dead[d.path] = dead
            for entry in dead:
                self.reporter.report(
                    d.path,
                    d.node,
                    "MAYA051",
                    f"salt entry '{entry}' in {_SALT_NAME} matches no module "
                    f"reachable from the simulation entry points; a dead or "
                    f"typo'd entry gives false cache-invalidation confidence",
                )

    # ------------------------------------------------------------------
    # MAYA053: job-key field accounting
    # ------------------------------------------------------------------

    def _check_job_key(self) -> None:
        for cls_name in sorted(self._key_fns):
            key_fn = self._key_fns[cls_name]
            missing = sorted(self._read[cls_name] - self._hashed[cls_name])
            for field_name in missing:
                self.reporter.report(
                    key_fn.path,
                    key_fn.node,
                    "MAYA053",
                    f"job field '{field_name}' influences the simulation "
                    f"trace but does not flow into {cls_name}.key()'s "
                    f"digest; two jobs differing only in '{field_name}' "
                    f"would collide in the cache",
                )

    # ------------------------------------------------------------------
    # Certificate inputs
    # ------------------------------------------------------------------

    def effect_records(self, kind: str, waived: bool, closure_dotted: Set[str]) -> List[dict]:
        bucket = self._ambient if kind == "ambient" else self._mutations
        records = [r for r in bucket[waived] if r["module"] in closure_dotted]
        return sorted(records, key=lambda r: (r["module"], r["line"], r["detail"]))

    def job_key_section(self, entry: FunctionInfo) -> Optional[dict]:
        cls_name = self._entry_job_cls.get(entry.qualname)
        if cls_name is None:
            return None
        read = self._read.get(cls_name, set())
        hashed = self._hashed.get(cls_name, set())
        return {
            "class": cls_name,
            "fields": sorted(self._job_classes.get(cls_name, ())),
            "hashed": sorted(hashed),
            "read_outside_digest": sorted(read),
            "missing": sorted(read - hashed),
        }

    def salt_section(self) -> dict:
        if not self.salt_defs:
            return {
                "declared": [],
                "covered": [],
                "unsalted": [],
                "dead_entries": [],
                "verdict": "absent",
            }
        declared = sorted({e for d in self.salt_defs for e in d.entries})
        dead = sorted({e for entries in self.salt_dead.values() for e in entries})
        unsound = bool(self.salt_unsalted) or bool(dead)
        return {
            "declared": declared,
            "covered": sorted(module_name(p) for p in self.salt_covered),
            "unsalted": sorted(module_name(p) for p in self.salt_unsalted),
            "dead_entries": dead,
            "verdict": "unsound" if unsound else "ok",
        }


# ---------------------------------------------------------------------------
# Entry point and certificates
# ---------------------------------------------------------------------------


def analyze_purity(
    model: ProjectModel, sources: Optional[Dict[str, Sequence[str]]] = None
) -> Tuple[List[Finding], Dict[str, dict]]:
    """Run the purity analysis.

    Returns ``(findings, certificates)`` where ``certificates`` maps each
    entry-point display name to its ``maya.lint.purity-certificate.v1``.
    Projects without simulation entry points produce neither.
    """
    reporter = Reporter()
    evaluator = PurityEvaluator(model, reporter, sources)
    evaluator.analyze()
    findings = sorted(reporter.findings)
    return findings, purity_certificates(model, findings, evaluator)


def purity_certificates(
    model: ProjectModel,
    findings: Sequence[Finding],
    evaluator: PurityEvaluator,
) -> Dict[str, dict]:
    """One certificate per simulation entry point.

    The salt section is computed over the *union* closure of every entry
    (and embedded identically in each certificate), so a twin's narrow
    closure never reports the orchestration packages as dead entries.
    """
    certificates: Dict[str, dict] = {}
    salt = evaluator.salt_section()
    rule_findings = [f for f in findings if f.rule_id in PURITY_RULES]
    for display, fn in sorted(evaluator.entries, key=lambda item: item[0]):
        job_key = evaluator.job_key_section(fn)
        closure_paths = evaluator.closure_for(fn)
        closure_dotted = {module_name(p) for p in closure_paths}
        waivers = []
        seen_waivers = set()
        for path in sorted(closure_paths):
            waiver = evaluator._waiver_for(path)
            if waiver is None:
                continue
            entry = {"module": module_name(path), "reason": waiver[1]}
            key = (entry["module"], entry["reason"])
            if key not in seen_waivers:
                seen_waivers.add(key)
                waivers.append(entry)
        in_closure = [
            f for f in rule_findings if module_name(f.path) in closure_dotted
        ]
        ok = (
            salt["verdict"] in ("ok", "absent")
            and not in_closure
            and not (job_key or {}).get("missing")
        )
        certificates[display] = {
            "schema": PURITY_CERT_SCHEMA,
            "entry": display,
            "entry_module": module_name(fn.path),
            "closure_modules": sorted(closure_dotted),
            "waivers": waivers,
            "salt": salt,
            "ambient": {
                "violations": evaluator.effect_records("ambient", False, closure_dotted),
                "waived": evaluator.effect_records("ambient", True, closure_dotted),
            },
            "mutations": {
                "violations": evaluator.effect_records("mutation", False, closure_dotted),
                "waived": evaluator.effect_records("mutation", True, closure_dotted),
            },
            "job_key": job_key,
            "ok": ok,
        }
    return certificates
