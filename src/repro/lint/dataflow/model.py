"""Project model for the dataflow analyses: functions, classes, imports.

The model is the cross-module half of the single-parse pipeline: the engine
parses every file once, and :class:`ProjectModel` indexes the resulting
trees so the analyses can resolve calls, walk method-resolution orders, and
find every ``self.attr = ...`` site without re-parsing.

Resolution is deliberately best-effort, in the style of a linter rather
than a type checker:

* a ``Name`` callee resolves to a class constructor or to a module-level
  function of the same module, falling back to the unique project-wide
  function of that bare name;
* an ``obj.method(...)`` callee resolves through the receiver's inferred
  class (annotation or constructor call) and its MRO, falling back to the
  unique project-wide method of that bare name;
* anything ambiguous resolves to *unknown*, which the analyses treat as
  top — unresolved code can never create a finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ParsedModule",
    "ProjectModel",
    "ModuleCtx",
    "name_tokens",
    "dotted_name",
]

_TOKEN_RE = re.compile(r"[A-Z]?[a-z]+|[A-Z]+(?![a-z])|\d+")


def name_tokens(name: str) -> Tuple[str, ...]:
    """Split a snake_case / CamelCase identifier into lowercase tokens."""
    return tuple(tok.lower() for tok in _TOKEN_RE.findall(name))


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain ('' if not one)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _annotation_names(node: Optional[ast.AST]) -> Tuple[str, ...]:
    """Candidate class names mentioned by an annotation expression."""
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value.strip().split("[")[0].rsplit(".", 1)[-1],)
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return (node.attr,)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_names(node.left) + _annotation_names(node.right)
    if isinstance(node, ast.Subscript):
        # Optional[X] / tuple[X, ...] — look inside for a usable name.
        outer = _annotation_names(node.value)
        if outer and outer[0] in ("Optional", "Annotated"):
            return _annotation_names(node.slice)
        return outer
    return ()


@dataclass
class FunctionInfo:
    """One ``def``: identity, parameters, and the AST body."""

    path: str
    name: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    params: Tuple[str, ...] = ()
    vararg: Optional[str] = None
    kwarg: Optional[str] = None
    annotations: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    return_annotation: Tuple[str, ...] = ()
    decorators: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None and "staticmethod" not in self.decorators

    @property
    def is_property(self) -> bool:
        return any(dec in ("property", "cached_property") for dec in self.decorators)


@dataclass
class ClassInfo:
    """One ``class``: methods, fields, and every ``self.attr`` store site."""

    path: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class-level simple assignments (``X = expr`` in the class body).
    class_assigns: Dict[str, ast.expr] = field(default_factory=dict)
    #: AnnAssign field annotations (dataclass fields), in declaration order.
    field_ann: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: ``self.attr = expr`` sites: (attr, value expression, enclosing method).
    attr_sites: List[Tuple[str, ast.expr, FunctionInfo]] = field(default_factory=list)
    is_dataclass: bool = False


@dataclass(frozen=True)
class ModuleCtx:
    """Lightweight evaluation context for module-level expressions."""

    path: str
    class_name: Optional[str] = None
    name: str = "<module>"


@dataclass
class ParsedModule:
    """One parsed file plus its import-alias map (local name -> dotted)."""

    path: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Module-level simple assignments (``NAME = expr``).
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted path, keeping relative imports by last segment."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            prefix = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def _function_info(
    node: ast.AST, path: str, class_name: Optional[str] = None
) -> FunctionInfo:
    decorators = tuple(
        dotted_name(dec).rsplit(".", 1)[-1]
        for dec in node.decorator_list
        if dotted_name(dec)
    )
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    annotations = {
        a.arg: _annotation_names(a.annotation)
        for a in args.posonlyargs + args.args + args.kwonlyargs
        if a.annotation is not None
    }
    is_method = class_name is not None and "staticmethod" not in decorators
    if is_method and names:
        names = names[1:]
    qual = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        path=path,
        name=node.name,
        qualname=f"{path}::{qual}",
        node=node,
        class_name=class_name,
        params=tuple(names),
        vararg=args.vararg.arg if args.vararg else None,
        kwarg=args.kwarg.arg if args.kwarg else None,
        annotations=annotations,
        return_annotation=_annotation_names(node.returns),
        decorators=decorators,
    )


def _collect_attr_sites(info: FunctionInfo, out: List[Tuple[str, ast.expr, FunctionInfo]]) -> None:
    for node in ast.walk(info.node):
        targets: List[ast.AST] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append((target.attr, value, info))


def _class_info(node: ast.ClassDef, path: str) -> ClassInfo:
    info = ClassInfo(
        path=path,
        name=node.name,
        node=node,
        bases=tuple(dotted_name(base).rsplit(".", 1)[-1] for base in node.bases),
        is_dataclass=any(
            dotted_name(dec).rsplit(".", 1)[-1].startswith("dataclass")
            for dec in node.decorator_list
        ),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _function_info(stmt, path, class_name=node.name)
            info.methods[stmt.name] = method
            _collect_attr_sites(method, info.attr_sites)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.field_ann[stmt.target.id] = _annotation_names(stmt.annotation)
            if stmt.value is not None:
                info.class_assigns[stmt.target.id] = stmt.value
        elif isinstance(stmt, ast.Assign) and stmt.value is not None:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_assigns[target.id] = stmt.value
    return info


class ProjectModel:
    """Cross-module index over a set of parsed files."""

    def __init__(self, modules: Sequence[Tuple[str, ast.Module]]) -> None:
        self.modules: Dict[str, ParsedModule] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.functions: List[FunctionInfo] = []
        self._by_bare_name: Dict[str, List[FunctionInfo]] = {}
        self._assign_origin: Dict[str, List[str]] = {}

        for path, tree in modules:
            parsed = ParsedModule(path=path, tree=tree, aliases=_import_aliases(tree))
            for stmt in tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _function_info(stmt, path)
                    parsed.functions[stmt.name] = info
                elif isinstance(stmt, ast.ClassDef):
                    parsed.classes[stmt.name] = _class_info(stmt, path)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            parsed.assigns[target.id] = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    if stmt.value is not None:
                        parsed.assigns[stmt.target.id] = stmt.value
            self.modules[path] = parsed
            for name in parsed.assigns:
                self._assign_origin.setdefault(name, []).append(path)
            for info in parsed.functions.values():
                self.functions.append(info)
                self._by_bare_name.setdefault(info.name, []).append(info)
            for cls in parsed.classes.values():
                self.classes.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.functions.append(method)
                    self._by_bare_name.setdefault(method.name, []).append(method)

    # -- lookups ---------------------------------------------------------

    def class_named(self, name: str) -> Optional[ClassInfo]:
        """The class of that bare name, if it is unique project-wide."""
        matches = self.classes.get(name, [])
        return matches[0] if len(matches) == 1 else None

    def unique_function(self, name: str) -> Optional[FunctionInfo]:
        """The function/method of that bare name, if unique project-wide."""
        matches = self._by_bare_name.get(name, [])
        return matches[0] if len(matches) == 1 else None

    def unique_assign(self, name: str) -> Optional[Tuple[str, ast.expr]]:
        """The module-level assignment of that name, if unique project-wide."""
        origins = self._assign_origin.get(name, [])
        if len(origins) != 1:
            return None
        return origins[0], self.modules[origins[0]].assigns[name]

    def mro(self, class_name: str) -> List[ClassInfo]:
        """Linearized project-visible base chain (self first, no repeats)."""
        out: List[ClassInfo] = []
        seen = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.class_named(name)
            if cls is None:
                continue
            out.append(cls)
            queue.extend(cls.bases)
        return out

    def resolve_method(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        for cls in self.mro(class_name):
            if method in cls.methods:
                return cls.methods[method]
        return None

    def dataclass_fields(self, class_name: str) -> Tuple[str, ...]:
        """Constructor parameter names of a dataclass, MRO-ordered."""
        fields: List[str] = []
        for cls in reversed(self.mro(class_name)):
            if not cls.is_dataclass:
                continue
            for name in cls.field_ann:
                if name not in fields:
                    fields.append(name)
        return tuple(fields)

    def constructor(self, class_name: str) -> Optional[FunctionInfo]:
        return self.resolve_method(class_name, "__init__")

    def attr_sites(self, class_name: str, attr: str) -> List[Tuple[ast.expr, FunctionInfo]]:
        """Every value expression assigned to ``self.<attr>`` over the MRO."""
        sites = []
        for cls in self.mro(class_name):
            for name, value, method in cls.attr_sites:
                if name == attr:
                    sites.append((value, method))
            if attr in cls.class_assigns:
                sites.append((cls.class_assigns[attr], None))
        return sites

    def field_annotation(self, class_name: str, attr: str) -> Tuple[str, ...]:
        for cls in self.mro(class_name):
            if attr in cls.field_ann:
                return cls.field_ann[attr]
        return ()

    def resolve_alias(self, path: str, name: str) -> str:
        parsed = self.modules.get(path)
        if parsed is None:
            return name
        return parsed.aliases.get(name, name)
