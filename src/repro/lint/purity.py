"""Certificate I/O for the purity & cache-salt soundness analysis.

The committed ``certs/purity/`` directory holds one JSON file per
simulation entry point, named by the entry's display name
(``execute_job.json``, ``MayaDefense.decide_fleet.json``).  CI
regenerates the certificates with ``repro-lint --analyze purity
--write-certs`` into a scratch directory and fails on any drift against
the committed set — the same regenerate-and-diff contract the numeric
certificates use (:mod:`repro.lint.certs`).
"""

from __future__ import annotations

from typing import Dict, List

from .certs import check_certificate_set, write_certificate_set
from .dataflow.purity import PURITY_CERT_SCHEMA

__all__ = [
    "PURITY_CERT_SCHEMA",
    "write_purity_certificates",
    "check_purity_certificates",
]


def _cert_filename(certificate: dict) -> str:
    return f"{certificate['entry']}.json"


def write_purity_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Write one JSON file per entry-point certificate; returns names."""
    return write_certificate_set(certificates, directory, _cert_filename)


def check_purity_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Diff fresh purity certificates against a committed directory."""
    return check_certificate_set(certificates, directory, _cert_filename)
