"""The MAYA rule set: repo-specific AST hazards.

Each rule is a small, pluggable visitor with a stable id (``MAYA001``...),
a severity, and a one-line rationale tied to the reproduction's invariants.
Rules inspect one parsed module at a time through :meth:`Rule.check` and
yield ``(line, col, message)`` triples; the engine owns file discovery,
suppression (``# maya: ignore[RULE]``) and reporting.

Registering a new rule is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "MAYA042"
        severity = "error"
        summary = "what invariant this protects"

        def check(self, tree, ctx):
            ...
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple, Type

__all__ = [
    "LintContext",
    "RawFinding",
    "Rule",
    "register",
    "default_rules",
    "all_rule_ids",
]

#: ``(line, col, message)`` as produced by a rule; the engine attaches the
#: rule id, severity, and path.
RawFinding = Tuple[int, int, str]


@dataclass(frozen=True)
class LintContext:
    """Per-module facts shared by every rule."""

    #: Forward-slash-normalized path of the module being linted.
    path: str
    #: Physical source lines (used by rules that need raw text).
    source_lines: tuple
    #: Whole-project dataflow results (a
    #: :class:`repro.lint.dataflow.DataflowContext`) when the engine was
    #: configured with ``analyses``; None for plain per-module lint runs.
    dataflow: object = None

    def path_endswith(self, suffixes: tuple) -> bool:
        return any(self.path.endswith(suffix) for suffix in suffixes)

    @property
    def module_stem(self) -> str:
        name = self.path.rsplit("/", 1)[-1]
        return name[:-3] if name.endswith(".py") else name


class Rule:
    """Base class: subclass, set the class attributes, implement check()."""

    rule_id: str = "MAYA000"
    severity: str = "error"
    summary: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.rule_id}>"


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default set."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def default_rules() -> tuple:
    """Fresh instances of every registered rule, ordered by id."""
    return tuple(_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY))


def all_rule_ids() -> tuple:
    return tuple(sorted(_REGISTRY))


# --------------------------------------------------------------------------
# Shared AST helpers
# --------------------------------------------------------------------------


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module path they are bound to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import random``
    maps ``random -> numpy.random``; ``from time import time as now`` maps
    ``now -> time.time``.  Relative imports are skipped (they cannot reach
    numpy/time/datetime).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain ('' if not one)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _resolve(dotted: str, aliases: Dict[str, str]) -> str:
    """Substitute the root of ``dotted`` through the import alias map."""
    if not dotted:
        return ""
    root, _, rest = dotted.partition(".")
    base = aliases.get(root, root)
    return f"{base}.{rest}" if rest else base


def _resolved_calls(tree: ast.Module) -> Iterator[Tuple[ast.Call, str]]:
    """Every Call node paired with its alias-resolved dotted callee name."""
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            resolved = _resolve(_dotted_name(node.func), aliases)
            if resolved:
                yield node, resolved


# --------------------------------------------------------------------------
# MAYA001 — randomness must flow through repro.machine.rng.spawn
# --------------------------------------------------------------------------


@register
class DirectRandomnessRule(Rule):
    """Direct ``np.random.*`` / ``random.*`` use breaks hierarchical seeding.

    Every stochastic component must draw from a generator obtained through
    ``repro.machine.rng.spawn(seed, *keys)`` so that streams are independent
    and experiments stay byte-reproducible end to end.  A raw
    ``np.random.default_rng`` (or worse, the legacy global ``np.random.seed``)
    creates an unkeyed stream that collides with or silently reorders the
    draws of other components.
    """

    rule_id = "MAYA001"
    severity = "error"
    summary = "randomness outside repro.machine.rng.spawn"

    #: The one module allowed to touch numpy's RNG constructors.
    allowed_path_suffixes = ("repro/machine/rng.py",)

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if ctx.path_endswith(self.allowed_path_suffixes):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield (
                            node.lineno,
                            node.col_offset,
                            "import of the stdlib 'random' module; draw from "
                            "repro.machine.rng.spawn instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "import from the stdlib 'random' module; draw from "
                        "repro.machine.rng.spawn instead",
                    )
        for call, resolved in _resolved_calls(tree):
            if resolved.startswith("numpy.random.") or resolved.startswith("random."):
                yield (
                    call.lineno,
                    call.col_offset,
                    f"direct call to {resolved}(); obtain generators via "
                    "repro.machine.rng.spawn(seed, *keys)",
                )


# --------------------------------------------------------------------------
# MAYA002 — no wall-clock reads outside the sanctioned timing sites
# --------------------------------------------------------------------------


@register
class WallClockRule(Rule):
    """Wall-clock reads make simulated experiments time-dependent.

    The simulation is a deterministic function of (platform, workload,
    seed); reading the host clock anywhere inside it destroys that.  The
    only sanctioned sites are the CLI stopwatch (``repro/__main__.py``) and
    the Section VII-E latency micro-benchmark, which measure *our* runtime
    rather than feed the simulation.
    """

    rule_id = "MAYA002"
    severity = "error"
    summary = "wall-clock call outside the sanctioned timing sites"

    sanctioned_path_suffixes = (
        "repro/__main__.py",
        "repro/experiments/sec7e_controller_cost.py",
        "repro/bench/__init__.py",
        "repro/bench/__main__.py",
        "repro/telemetry/profile.py",
    )

    banned_calls = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if ctx.path_endswith(self.sanctioned_path_suffixes):
            return
        for call, resolved in _resolved_calls(tree):
            if resolved in self.banned_calls:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"wall-clock call {resolved}(); simulated time must come "
                    "from the machine model, host time only from the "
                    "sanctioned timing sites",
                )


# --------------------------------------------------------------------------
# MAYA003 — no float literal == / !=
# --------------------------------------------------------------------------


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    """``x == 0.3`` style comparisons are representation-dependent.

    Exact equality against a float literal silently depends on rounding
    behaviour (and breaks under the fixed-point refactors this repo keeps
    making).  Compare with a tolerance (``abs(x - y) < eps`` /
    ``math.isclose``) or suppress with a justified ``# maya: ignore``.
    """

    rule_id = "MAYA003"
    severity = "error"
    summary = "float literal compared with == / !="

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(operands[i]) or _is_float_literal(operands[i + 1]):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "float literal compared with ==/!=; use a tolerance "
                        "(abs(a - b) < eps or math.isclose)",
                    )
                    break


# --------------------------------------------------------------------------
# MAYA004 — mutable default arguments
# --------------------------------------------------------------------------


_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableDefaultRule(Rule):
    """Mutable defaults are shared across calls — state leaks between runs."""

    rule_id = "MAYA004"
    severity = "error"
    summary = "mutable default argument"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield (
                        default.lineno,
                        default.col_offset,
                        "mutable default argument; use None and create the "
                        "object inside the function",
                    )


# --------------------------------------------------------------------------
# MAYA005 — public modules must declare __all__
# --------------------------------------------------------------------------


@register
class MissingAllRule(Rule):
    """Public modules without ``__all__`` leak implementation names.

    Every public module in ``src/repro`` declares its API explicitly;
    ``import *`` hygiene aside, the declaration is what the docs and the
    re-exporting ``__init__`` files key off.  Modules whose name starts
    with an underscore (``__main__``, private helpers) are exempt.
    """

    rule_id = "MAYA005"
    severity = "warning"
    summary = "public module missing __all__"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if ctx.module_stem.startswith("_"):
            return
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return
        yield (1, 0, "public module does not declare __all__")


# --------------------------------------------------------------------------
# MAYA006 — bare except
# --------------------------------------------------------------------------


@register
class BareExceptRule(Rule):
    """``except:`` swallows KeyboardInterrupt/SystemExit and hides bugs."""

    rule_id = "MAYA006"
    severity = "error"
    summary = "bare except clause"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare 'except:'; catch a specific exception type",
                )


# --------------------------------------------------------------------------
# MAYA030 — execution-layer results must be collated in job order
# --------------------------------------------------------------------------


@register
class NondeterministicCollationRule(Rule):
    """The execution layer must collate results in submission order.

    ``repro.exec`` guarantees that ``run_sessions`` returns traces in job
    order, bit-identical whether jobs ran serially, in a pool, or from the
    cache.  Two idioms silently break that guarantee: iterating futures in
    *completion* order (``concurrent.futures.as_completed``) and iterating
    an unordered container (a ``set``/``frozenset`` of futures or jobs).
    Both reorder results by scheduling accidents, so the rule bans them
    inside ``src/repro/exec/``.  If completion-order draining is ever
    genuinely needed, pair it with an explicit reorder-by-index step and
    suppress with ``# maya: ignore[MAYA030]`` on that line.
    """

    rule_id = "MAYA030"
    severity = "error"
    summary = "nondeterministic result collation in the execution layer"

    scoped_path_fragment = "repro/exec/"

    _unordered_builtins = frozenset({"set", "frozenset"})

    def _is_unordered(self, node: ast.AST, aliases: Dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = _resolve(_dotted_name(node.func), aliases)
            return resolved in self._unordered_builtins
        return False

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if self.scoped_path_fragment not in ctx.path:
            return
        aliases = _import_aliases(tree)
        for call, resolved in _resolved_calls(tree):
            if resolved == "concurrent.futures.as_completed" or resolved.endswith(
                ".as_completed"
            ):
                yield (
                    call.lineno,
                    call.col_offset,
                    f"{resolved}() yields results in completion order; "
                    "collate futures by job index instead",
                )
        iterables: list = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if self._is_unordered(iterable, aliases):
                yield (
                    iterable.lineno,
                    iterable.col_offset,
                    "iteration over an unordered set in the execution "
                    "layer; results must be collated in job order",
                )


# --------------------------------------------------------------------------
# MAYA031 — execution-layer filesystem enumeration must be sorted
# --------------------------------------------------------------------------


@register
class UnsortedEnumerationRule(Rule):
    """Directory listing order is a filesystem accident; sort it.

    ``os.listdir``/``os.scandir``/``glob`` and the ``Path.glob``/
    ``rglob``/``iterdir`` methods return entries in whatever order the
    filesystem happens to hold them — it differs between ext4, tmpfs and
    CI containers.  Inside ``src/repro/exec/`` that order feeds cache
    eviction and the code-salt digest, and inside ``src/repro/telemetry/``
    it feeds run-manifest collation, so an unsorted enumeration makes
    behaviour host-dependent.  Wrap the call in ``sorted(...)`` (or
    suppress with ``# maya: ignore[MAYA031]`` where order provably cannot
    matter).
    """

    rule_id = "MAYA031"
    severity = "error"
    summary = "unsorted filesystem enumeration in the execution layer"

    scoped_path_fragments = ("repro/exec/", "repro/telemetry/")

    _module_functions = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )
    _method_suffixes = (".glob", ".rglob", ".iterdir")

    def _is_enumeration(self, resolved: str) -> bool:
        if resolved in self._module_functions:
            return True
        return resolved.endswith(self._method_suffixes)

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if not any(fragment in ctx.path for fragment in self.scoped_path_fragments):
            return
        sorted_wrapped = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                sorted_wrapped.add(id(node.args[0]))
        for call, resolved in _resolved_calls(tree):
            if self._is_enumeration(resolved) and id(call) not in sorted_wrapped:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"{resolved}() enumerates the filesystem in arbitrary "
                    "order; wrap the call in sorted()",
                )


# --------------------------------------------------------------------------
# MAYA032 — telemetry must stay out-of-band in simulation code
# --------------------------------------------------------------------------


@register
class TelemetryIsolationRule(Rule):
    """Simulation code may only *call* telemetry, never read it back.

    ``repro.telemetry`` is strictly out-of-band: the simulation is a pure
    function of (platform, workload, seed), and a trace must be
    bit-identical whether recording is on or off.  Inside the simulation
    packages (``machine``, ``control``, ``defenses``, ``masks``,
    ``core``), a name imported from ``repro.telemetry`` may therefore
    appear only as the root of a fire-and-forget call *statement* — never
    assigned, returned, passed as an argument, compared, or otherwise
    allowed to flow into machine/controller state.  The engine layer
    (``repro/exec/``) owns recorder objects and is exempt.
    """

    rule_id = "MAYA032"
    severity = "error"
    summary = "telemetry symbol flows into simulation state"

    scoped_path_fragments = (
        "repro/machine/",
        "repro/control/",
        "repro/defenses/",
        "repro/masks/",
        "repro/core/",
    )

    @staticmethod
    def _telemetry_bindings(tree: ast.Module) -> Dict[str, ast.AST]:
        """Local names bound to ``repro.telemetry`` or symbols inside it."""
        bound: Dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.telemetry" or alias.name.endswith(
                        ".telemetry"
                    ):
                        local = alias.asname or alias.name.split(".", 1)[0]
                        bound[local] = node
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "telemetry" or module.endswith(".telemetry"):
                    for alias in node.names:
                        bound[alias.asname or alias.name] = node
                else:
                    for alias in node.names:
                        if alias.name == "telemetry":
                            bound[alias.asname or alias.name] = node
        return bound

    @staticmethod
    def _call_root(node: ast.AST) -> "ast.Name | None":
        """The Name at the base of a (possibly dotted) call target."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        while isinstance(func, ast.Attribute):
            func = func.value
        return func if isinstance(func, ast.Name) else None

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if not any(fragment in ctx.path for fragment in self.scoped_path_fragments):
            return
        bound = self._telemetry_bindings(tree)
        if not bound:
            return
        # Sanctioned usages: the root Name of a call that is itself a bare
        # expression statement — the fire-and-forget emission pattern.
        sanctioned = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Expr):
                root = self._call_root(node.value)
                if root is not None:
                    sanctioned.add(id(root))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Name)
                and node.id in bound
                and id(node) not in sanctioned
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"telemetry symbol {node.id!r} used outside a "
                    "fire-and-forget call statement; simulation state must "
                    "never hold or read back telemetry (out-of-band "
                    "invariant)",
                )


# --------------------------------------------------------------------------
# MAYA033 — the span profiler may not appear in simulation code at all
# --------------------------------------------------------------------------


@register
class ProfilerIsolationRule(Rule):
    """Simulation code may not touch the span profiler — not even to call it.

    MAYA032 lets simulation packages *call* ``repro.telemetry`` functions
    fire-and-forget, because the recorder is keyed on deterministic sim
    time.  The profiler (``repro.telemetry.profile``) is different: it
    reads the wall clock, so any span opened inside the simulation would
    interleave host-timing state with the hot loop and invite exactly the
    feedback MAYA032 exists to prevent.  Spans belong to the engine layer
    (``repro/exec/``) and the bench harness only; inside the simulation
    packages every reference to the profiler module or its symbols — an
    import, an attribute access, a call — is an error.
    """

    rule_id = "MAYA033"
    severity = "error"
    summary = "profiler symbol in simulation code"

    scoped_path_fragments = TelemetryIsolationRule.scoped_path_fragments

    #: Names exported by ``repro.telemetry.profile`` whose import into a
    #: simulation module is banned outright.
    profiler_symbols = frozenset(
        {
            "profile",
            "SpanProfiler",
            "NullProfiler",
            "get_profiler",
            "set_profiler",
            "span",
        }
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[RawFinding]:
        if not any(fragment in ctx.path for fragment in self.scoped_path_fragments):
            return
        telemetry_names = set(TelemetryIsolationRule._telemetry_bindings(tree))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(".telemetry.profile") or (
                        alias.name == "telemetry.profile"
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"profiler module {alias.name!r} imported in "
                            "simulation code; spans belong to the engine "
                            "layer (MAYA033)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                from_telemetry = module == "telemetry" or module.endswith(".telemetry")
                from_profile = module == "telemetry.profile" or module.endswith(
                    ".telemetry.profile"
                )
                if from_profile:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "import from the profiler module in simulation "
                        "code; spans belong to the engine layer (MAYA033)",
                    )
                elif from_telemetry:
                    for alias in node.names:
                        if alias.name in self.profiler_symbols:
                            yield (
                                node.lineno,
                                node.col_offset,
                                f"profiler symbol {alias.name!r} imported in "
                                "simulation code; spans belong to the engine "
                                "layer (MAYA033)",
                            )
            elif isinstance(node, ast.Attribute) and node.attr == "profile":
                value = node.value
                while isinstance(value, ast.Attribute):
                    value = value.value
                if isinstance(value, ast.Name) and value.id in telemetry_names:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "profiler accessed through a telemetry binding in "
                        "simulation code; spans belong to the engine layer "
                        "(MAYA033)",
                    )
