"""Lint engine: file discovery, suppression, and reporting.

The engine is rule-agnostic: it parses each module once, hands the tree to
every rule, and filters the findings through per-line suppressions of the
form::

    rng = np.random.default_rng(0)  # maya: ignore[MAYA001]
    x = anything_goes()             # maya: ignore

A bracketed list suppresses only the named rules on that physical line; a
bare ``# maya: ignore`` suppresses every rule.  Suppressions apply to any
line of the statement a finding is reported on: for a multi-line (simple)
statement the comment may sit on the first *or* the last physical line.

The engine parses each file exactly once.  When constructed with
``analyses`` (``"units"`` and/or ``"taint"``), the parsed trees are also
fed to the whole-project dataflow pass (:mod:`repro.lint.dataflow`) and
its findings are reported through the same suppression and formatting
machinery; the taint analysis additionally yields a leakage certificate,
carried on the returned :class:`LintReport`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .rules import LintContext, Rule, default_rules

__all__ = [
    "Diagnostic",
    "LintEngine",
    "LintReport",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
    "statement_extents",
    "format_text",
    "format_json",
    "format_github",
]

_SUPPRESSION_RE = re.compile(r"#\s*maya:\s*ignore(?:\s*\[([A-Za-z0-9_,\s]*)\])?")

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "MAYA000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, how bad, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict:
        return asdict(self)


def parse_suppressions(source_lines: Sequence[str]) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppression map: line number -> rule ids, or None for all."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None or not listed.strip():
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                rule.strip().upper() for rule in listed.split(",") if rule.strip()
            )
    return suppressions


#: Simple (non-compound) statements: a suppression on their last physical
#: line covers the whole statement extent.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Pass,
)


def statement_extents(tree: ast.Module) -> List[Tuple[int, int]]:
    """(first, last) line pairs of every multi-line simple statement."""
    extents = []
    for node in ast.walk(tree):
        if isinstance(node, _SIMPLE_STMTS):
            end = getattr(node, "end_lineno", None)
            if end is not None and end > node.lineno:
                extents.append((node.lineno, end))
    return extents


def _merge_suppression(
    a: Optional[FrozenSet[str]], b: Optional[FrozenSet[str]]
) -> Optional[FrozenSet[str]]:
    if a is None or b is None:
        return None  # a blanket ``# maya: ignore`` wins
    return a | b


def extend_suppressions(
    tree: ast.Module, suppressions: Dict[int, Optional[FrozenSet[str]]]
) -> Dict[int, Optional[FrozenSet[str]]]:
    """Spread a suppression on the last line of a multi-line simple
    statement across the statement's whole extent."""
    if not suppressions:
        return suppressions
    out = dict(suppressions)
    for first, last in statement_extents(tree):
        if last not in suppressions:
            continue
        tail = suppressions[last]
        for line in range(first, last):
            out[line] = _merge_suppression(out.get(line, frozenset()), tail)
    return out


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    seen = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


@dataclass
class LintReport:
    """Everything one lint run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: The taint analysis' leakage certificate, when it ran.
    certificate: Optional[dict] = None
    #: Per-module reassociation-safety certificates (numeric analysis).
    numeric_certificates: Optional[Dict[str, dict]] = None
    #: Per-entry-point cache-soundness certificates (purity analysis).
    purity_certificates: Optional[Dict[str, dict]] = None
    #: Findings filtered out by ``# maya: ignore`` suppressions.
    suppressed: List[Diagnostic] = field(default_factory=list)

    @property
    def has_syntax_error(self) -> bool:
        return any(d.rule_id == SYNTAX_ERROR_RULE for d in self.diagnostics)


@dataclass
class _ParsedFile:
    """One successfully parsed module, ready for rules and dataflow."""

    path: str
    tree: ast.Module
    source_lines: tuple
    suppressions: Dict[int, Optional[FrozenSet[str]]]


class LintEngine:
    """Run a rule set (and optional dataflow analyses) over sources."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        analyses: Sequence[str] = (),
    ) -> None:
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.analyses = tuple(analyses)

    # -- parsing -------------------------------------------------------

    def _parse(self, source: str, path: str):
        """-> (_ParsedFile, None) or (None, syntax-error Diagnostic)."""
        normalized = str(path).replace("\\", "/")
        try:
            tree = ast.parse(source, filename=normalized)
        except SyntaxError as exc:
            return None, Diagnostic(
                path=normalized,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=SYNTAX_ERROR_RULE,
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        source_lines = tuple(source.splitlines())
        suppressions = extend_suppressions(tree, parse_suppressions(source_lines))
        return (
            _ParsedFile(
                path=normalized,
                tree=tree,
                source_lines=source_lines,
                suppressions=suppressions,
            ),
            None,
        )

    # -- running -------------------------------------------------------

    def _check_file(
        self, parsed: _ParsedFile, rules, dataflow
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        ctx = LintContext(
            path=parsed.path, source_lines=parsed.source_lines, dataflow=dataflow
        )
        diagnostics: List[Diagnostic] = []
        suppressed_diags: List[Diagnostic] = []
        for rule in rules:
            for line, col, message in rule.check(parsed.tree, ctx):
                diagnostic = Diagnostic(
                    path=parsed.path,
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    message=message,
                )
                suppressed = parsed.suppressions.get(line, frozenset())
                if suppressed is None or rule.rule_id in suppressed:
                    suppressed_diags.append(diagnostic)
                else:
                    diagnostics.append(diagnostic)
        return diagnostics, suppressed_diags

    def _run(self, parsed_files, syntax_errors) -> LintReport:
        rules = self.rules
        dataflow = None
        if self.analyses:
            from .dataflow import DataflowContext, dataflow_rules

            dataflow = DataflowContext.build(
                [
                    (parsed.path, parsed.tree, parsed.source_lines)
                    for parsed in parsed_files
                ],
                self.analyses,
            )
            rules = rules + dataflow_rules(self.analyses)
        diagnostics = list(syntax_errors)
        suppressed: List[Diagnostic] = []
        for parsed in parsed_files:
            kept, muted = self._check_file(parsed, rules, dataflow)
            diagnostics.extend(kept)
            suppressed.extend(muted)
        return LintReport(
            diagnostics=sorted(diagnostics),
            certificate=dataflow.certificate if dataflow is not None else None,
            numeric_certificates=(
                dataflow.numeric_certificates if dataflow is not None else None
            ),
            purity_certificates=(
                dataflow.purity_certificates if dataflow is not None else None
            ),
            suppressed=sorted(suppressed),
        )

    def run_source(self, source: str, path: str = "<string>") -> LintReport:
        """Lint one module given as a string."""
        parsed, error = self._parse(source, path)
        if parsed is None:
            return LintReport(diagnostics=[error])
        return self._run([parsed], [])

    def run_paths(self, paths: Iterable) -> LintReport:
        """Lint files/directories; dataflow sees every file at once."""
        parsed_files: List[_ParsedFile] = []
        syntax_errors: List[Diagnostic] = []
        for path in iter_python_files(paths):
            parsed, error = self._parse(path.read_text(encoding="utf-8"), str(path))
            if parsed is None:
                syntax_errors.append(error)
            else:
                parsed_files.append(parsed)
        return self._run(parsed_files, syntax_errors)

    # -- compatibility wrappers ---------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> List[Diagnostic]:
        return self.run_source(source, path).diagnostics

    def lint_file(self, path) -> List[Diagnostic]:
        path = Path(path)
        return self.run_paths([path]).diagnostics

    def lint_paths(self, paths: Iterable) -> List[Diagnostic]:
        return self.run_paths(paths).diagnostics


def lint_paths(paths: Iterable, rules: Optional[Sequence[Rule]] = None) -> List[Diagnostic]:
    """Convenience wrapper: lint ``paths`` with the default (or given) rules."""
    return LintEngine(rules).lint_paths(paths)


def format_text(diagnostics: Sequence[Diagnostic]) -> str:
    lines = [diag.format() for diag in diagnostics]
    lines.append(
        f"{len(diagnostics)} finding(s)" if diagnostics else "clean: 0 findings"
    )
    return "\n".join(lines)


def format_json(
    diagnostics: Sequence[Diagnostic],
    certificate: Optional[dict] = None,
    numeric_certificates: Optional[Dict[str, dict]] = None,
    purity_certificates: Optional[Dict[str, dict]] = None,
) -> str:
    payload = {
        "findings": [diag.as_dict() for diag in diagnostics],
        "total": len(diagnostics),
    }
    if certificate is not None:
        payload["leakage_certificate"] = certificate
    if numeric_certificates is not None:
        payload["numeric_certificates"] = numeric_certificates
    if purity_certificates is not None:
        payload["purity_certificates"] = purity_certificates
    return json.dumps(payload, indent=2, sort_keys=True)


def format_github(diagnostics: Sequence[Diagnostic]) -> str:
    """GitHub Actions workflow-command annotations (``::error file=...``)."""
    lines = []
    for diag in diagnostics:
        level = "error" if diag.severity == "error" else "warning"
        lines.append(
            f"::{level} file={diag.path},line={diag.line},"
            f"col={diag.col + 1},title={diag.rule_id}::{diag.message}"
        )
    return "\n".join(lines)
