"""Lint engine: file discovery, suppression, and reporting.

The engine is rule-agnostic: it parses each module once, hands the tree to
every rule, and filters the findings through per-line suppressions of the
form::

    rng = np.random.default_rng(0)  # maya: ignore[MAYA001]
    x = anything_goes()             # maya: ignore

A bracketed list suppresses only the named rules on that physical line; a
bare ``# maya: ignore`` suppresses every rule.  Suppressions apply to the
line a finding is *reported* on (a multi-line statement is reported on its
first line).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence

from .rules import LintContext, Rule, default_rules

__all__ = [
    "Diagnostic",
    "LintEngine",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
    "format_text",
    "format_json",
]

_SUPPRESSION_RE = re.compile(r"#\s*maya:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "MAYA000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, how bad, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict:
        return asdict(self)


def parse_suppressions(source_lines: Sequence[str]) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppression map: line number -> rule ids, or None for all."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None or not listed.strip():
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                rule.strip().upper() for rule in listed.split(",") if rule.strip()
            )
    return suppressions


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    seen = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


class LintEngine:
    """Run a rule set over sources, files, or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules = tuple(rules) if rules is not None else default_rules()

    def lint_source(self, source: str, path: str = "<string>") -> List[Diagnostic]:
        """Lint one module given as a string."""
        normalized = str(path).replace("\\", "/")
        try:
            tree = ast.parse(source, filename=normalized)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=normalized,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=SYNTAX_ERROR_RULE,
                    severity="error",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        source_lines = tuple(source.splitlines())
        suppressions = parse_suppressions(source_lines)
        ctx = LintContext(path=normalized, source_lines=source_lines)

        diagnostics: List[Diagnostic] = []
        for rule in self.rules:
            for line, col, message in rule.check(tree, ctx):
                suppressed = suppressions.get(line, frozenset())
                if suppressed is None or rule.rule_id in suppressed:
                    continue
                diagnostics.append(
                    Diagnostic(
                        path=normalized,
                        line=line,
                        col=col,
                        rule_id=rule.rule_id,
                        severity=rule.severity,
                        message=message,
                    )
                )
        return sorted(diagnostics)

    def lint_file(self, path) -> List[Diagnostic]:
        path = Path(path)
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Iterable) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for path in iter_python_files(paths):
            diagnostics.extend(self.lint_file(path))
        return diagnostics


def lint_paths(paths: Iterable, rules: Optional[Sequence[Rule]] = None) -> List[Diagnostic]:
    """Convenience wrapper: lint ``paths`` with the default (or given) rules."""
    return LintEngine(rules).lint_paths(paths)


def format_text(diagnostics: Sequence[Diagnostic]) -> str:
    lines = [diag.format() for diag in diagnostics]
    lines.append(
        f"{len(diagnostics)} finding(s)" if diagnostics else "clean: 0 findings"
    )
    return "\n".join(lines)


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    payload = {
        "findings": [diag.as_dict() for diag in diagnostics],
        "total": len(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
