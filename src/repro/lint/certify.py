"""Static certification of a synthesized Equation-1 controller.

The paper's defense rests on formal properties of the artifact that ships:
a stable linear state machine (Section V-A) whose matrices fit the
firmware fixed-point format in under 1 KB (Section VII-E).
:func:`certify_controller` checks those properties statically — no
closed-loop simulation — and emits a JSON-able "controller certificate":

* every eigenvalue of A lies strictly inside the unit disk, except for up
  to ``allow_integrators`` poles at exactly +1 (the servo's deliberate
  error integrator, which gives offset-free mask tracking and survives in
  the closed Equation-1 form); the same must hold after quantization to
  the target format;
* no matrix entry saturates the Qm.n range (a silent clip can turn an
  unstable-looking controller into one that *appears* to work);
* the worst per-entry quantization error is below a bound (default: the
  half-ULP guarantee of round-to-nearest);
* matrices plus state fit the paper's 1 KB storage budget.

A certificate either has an empty ``violations`` tuple (``ok``) or lists
every failed check; :meth:`ControllerCertificate.raise_if_invalid` converts
the latter into a :class:`CertificationError` for pipeline use.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

import numpy as np

from ..control.fixedpoint import FixedPointFormat
from ..control.statespace import StateSpace
from ..control.synthesis import DesignedController

__all__ = [
    "DEFAULT_STORAGE_BUDGET_BYTES",
    "CertificationError",
    "ControllerCertificate",
    "certify_controller",
    "certify_design",
]

#: Section VII-E: "less than 1 KByte of storage".
DEFAULT_STORAGE_BUDGET_BYTES = 1024

#: Margin by which non-integrator eigenvalues must clear the unit circle
#: (matches :meth:`StateSpace.is_stable`).
DEFAULT_STABILITY_MARGIN = 1e-9

#: How close to +1 an eigenvalue must be to count as a deliberate
#: integrator pole rather than an instability.
DEFAULT_INTEGRATOR_TOLERANCE = 1e-6


class CertificationError(ValueError):
    """Raised when a controller artifact fails static certification."""


def _classify_eigenvalues(
    a: np.ndarray, margin: float, integrator_tolerance: float
) -> Tuple[float, int, float]:
    """``(spectral_radius, n_integrator_poles, non_integrator_radius)``.

    An eigenvalue counts as an integrator pole when it sits within
    ``integrator_tolerance`` of +1 in the complex plane; every other
    eigenvalue is held to the strict ``< 1 - margin`` bound.
    """
    eigenvalues = np.linalg.eigvals(a)
    radius = float(np.max(np.abs(eigenvalues))) if eigenvalues.size else 0.0
    integrator = np.abs(eigenvalues - 1.0) <= integrator_tolerance
    rest = eigenvalues[~integrator]
    rest_radius = float(np.max(np.abs(rest))) if rest.size else 0.0
    return radius, int(np.count_nonzero(integrator)), rest_radius


@dataclass(frozen=True)
class ControllerCertificate:
    """The verifiable facts about one (StateSpace, FixedPointFormat) pair."""

    #: Human-readable format tag, e.g. ``"Q7.24"``.
    format: str
    n_states: int
    n_inputs: int
    n_outputs: int
    #: Largest |eigenvalue| of the float A matrix (1.0 for a servo with an
    #: integrator pole).
    spectral_radius: float
    #: Eigenvalues within the integrator tolerance of +1.
    integrator_poles: int
    #: Largest |eigenvalue| excluding the integrator poles — the quantity
    #: held strictly below 1.
    non_integrator_radius: float
    #: Same two radii after a quantize/dequantize round trip of A.
    quantized_spectral_radius: float
    quantized_non_integrator_radius: float
    stability_margin: float
    #: Matrix entries whose magnitude exceeds the representable range.
    saturated_entries: int
    max_abs_entry: float
    representable_max: float
    #: Worst per-entry |dequantized - exact| across A, B, C, D.
    max_quantization_error: float
    quantization_error_bound: float
    storage_bytes: int
    storage_budget_bytes: int
    operations_per_step: int
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["violations"] = list(self.violations)
        payload["ok"] = self.ok
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def raise_if_invalid(self) -> "ControllerCertificate":
        if not self.ok:
            raise CertificationError(
                "controller failed certification: " + "; ".join(self.violations)
            )
        return self


def certify_controller(
    matrices: StateSpace,
    fmt: Optional[FixedPointFormat] = None,
    *,
    storage_budget_bytes: int = DEFAULT_STORAGE_BUDGET_BYTES,
    stability_margin: float = DEFAULT_STABILITY_MARGIN,
    allow_integrators: int = 1,
    integrator_tolerance: float = DEFAULT_INTEGRATOR_TOLERANCE,
    error_bound: Optional[float] = None,
) -> ControllerCertificate:
    """Statically certify an Equation-1 artifact against a firmware format.

    ``allow_integrators`` bounds how many poles may sit at +1 (the Maya
    servo carries exactly one, its error integrator); pass 0 to demand a
    strictly stable state machine.  ``error_bound`` defaults to the
    half-ULP guarantee of round-to-nearest quantization,
    ``2**-(fraction_bits + 1)`` plus float slack; it only holds for entries
    that do not saturate, so a saturating artifact reports both violations.
    """
    fmt = fmt or FixedPointFormat()
    if error_bound is None:
        error_bound = 2.0 ** -(fmt.fraction_bits + 1) + 1e-12

    named = (
        ("A", matrices.a),
        ("B", matrices.b),
        ("C", matrices.c),
        ("D", matrices.d),
    )

    violations = []

    # -- stability ------------------------------------------------------
    radius, integrators, rest_radius = _classify_eigenvalues(
        matrices.a, stability_margin, integrator_tolerance
    )
    if integrators > allow_integrators:
        violations.append(
            f"unstable: {integrators} integrator pole(s) at +1, only "
            f"{allow_integrators} allowed"
        )
    if not rest_radius < 1.0 - stability_margin:
        violations.append(
            f"unstable: non-integrator spectral radius of A is "
            f"{rest_radius:.6g} (needs < 1 - {stability_margin:g})"
        )

    # -- saturation -----------------------------------------------------
    saturated = 0
    max_abs = 0.0
    for name, matrix in named:
        mask = fmt.saturation_mask(matrix)
        count = int(np.count_nonzero(mask))
        if count:
            violations.append(
                f"saturation: {count} entr{'y' if count == 1 else 'ies'} of "
                f"{name} exceed the {fmt.describe()} range "
                f"(|max| = {float(np.max(np.abs(matrix))):.6g} > "
                f"{fmt.max_value:.6g})"
            )
        saturated += count
        max_abs = max(max_abs, float(np.max(np.abs(matrix))))

    # -- quantization error --------------------------------------------
    quant_error = 0.0
    for _, matrix in named:
        dequantized = fmt.to_float(fmt.quantize(matrix))
        quant_error = max(quant_error, float(np.max(np.abs(dequantized - matrix))))
    if quant_error > error_bound:
        violations.append(
            f"quantization error {quant_error:.6g} exceeds bound "
            f"{error_bound:.6g} for {fmt.describe()}"
        )

    # -- stability after quantization ----------------------------------
    a_dequant = fmt.to_float(fmt.quantize(matrices.a))
    q_radius, q_integrators, q_rest_radius = _classify_eigenvalues(
        a_dequant, stability_margin, integrator_tolerance
    )
    if q_integrators > allow_integrators or not q_rest_radius < 1.0 - stability_margin:
        violations.append(
            f"quantized A is unstable: non-integrator spectral radius "
            f"{q_rest_radius:.6g} with {q_integrators} integrator pole(s) "
            f"after rounding to {fmt.describe()}"
        )

    # -- storage --------------------------------------------------------
    word_bytes = 4 if fmt.total_bits <= 32 else 8
    n_words = (
        matrices.a.size
        + matrices.b.size
        + matrices.c.size
        + matrices.d.size
        + matrices.n_states
    )
    storage = n_words * word_bytes
    if storage > storage_budget_bytes:
        violations.append(
            f"storage {storage} B exceeds the {storage_budget_bytes} B budget"
        )

    return ControllerCertificate(
        format=fmt.describe(),
        n_states=matrices.n_states,
        n_inputs=matrices.n_inputs,
        n_outputs=matrices.n_outputs,
        spectral_radius=radius,
        integrator_poles=integrators,
        non_integrator_radius=rest_radius,
        quantized_spectral_radius=q_radius,
        quantized_non_integrator_radius=q_rest_radius,
        stability_margin=stability_margin,
        saturated_entries=saturated,
        max_abs_entry=max_abs,
        representable_max=fmt.max_value,
        max_quantization_error=quant_error,
        quantization_error_bound=float(error_bound),
        storage_bytes=storage,
        storage_budget_bytes=storage_budget_bytes,
        operations_per_step=matrices.operations_per_step(),
        violations=tuple(violations),
    )


def certify_design(
    design: DesignedController,
    fmt: Optional[FixedPointFormat] = None,
    **kwargs,
) -> ControllerCertificate:
    """Certify a synthesized design's closed Equation-1 form."""
    return certify_controller(design.as_equation1(), fmt, **kwargs)
