"""Certificate I/O for the reassociation-safety analysis.

The committed ``certs/numeric/`` directory holds one JSON file per
in-scope module, named by dotted module (``machine.power.json``).  CI
regenerates the certificates with ``repro-lint --analyze numeric
--write-certs`` into a scratch directory and fails on any drift against
the committed set — the same regenerate-and-diff contract the controller
certificate uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from .dataflow.numeric import CERT_SCHEMA, module_name

__all__ = ["CERT_SCHEMA", "module_name", "write_certificates", "check_certificates"]


def _cert_filename(certificate: dict) -> str:
    return f"{certificate['module']}.json"


def _render(certificate: dict) -> str:
    return json.dumps(certificate, indent=2, sort_keys=True) + "\n"


def write_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Write one JSON file per module certificate; returns written names."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for _path, certificate in sorted(certificates.items()):
        name = _cert_filename(certificate)
        (directory / name).write_text(_render(certificate), encoding="utf-8")
        written.append(name)
    return written


def check_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Diff freshly computed certificates against a committed directory.

    Returns a list of human-readable drift messages (empty means in sync):
    missing files, stale files with no current module, and content drift.
    """
    directory = Path(directory)
    problems: List[str] = []
    expected = {}
    for _path, certificate in sorted(certificates.items()):
        expected[_cert_filename(certificate)] = certificate
    committed = (
        {entry.name for entry in directory.glob("*.json")}
        if directory.is_dir()
        else set()
    )
    for name in sorted(set(expected) - committed):
        problems.append(f"missing certificate {name}: regenerate with --write-certs")
    for name in sorted(committed - set(expected)):
        problems.append(f"stale certificate {name}: no in-scope module produces it")
    for name in sorted(set(expected) & committed):
        try:
            on_disk = json.loads((directory / name).read_text(encoding="utf-8"))
        except ValueError:
            problems.append(f"unreadable certificate {name}: not valid JSON")
            continue
        if on_disk != expected[name]:
            problems.append(
                f"certificate drift in {name}: analysis output changed; "
                f"regenerate with --write-certs"
            )
    return problems
