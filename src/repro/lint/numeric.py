"""Certificate I/O for the reassociation-safety analysis.

The committed ``certs/numeric/`` directory holds one JSON file per
in-scope module, named by dotted module (``machine.power.json``).  CI
regenerates the certificates with ``repro-lint --analyze numeric
--write-certs`` into a scratch directory and fails on any drift against
the committed set — the regenerate-and-diff contract shared with the
purity certificates (:mod:`repro.lint.certs`).
"""

from __future__ import annotations

from typing import Dict, List

from .certs import check_certificate_set, write_certificate_set
from .dataflow.numeric import CERT_SCHEMA, module_name

__all__ = ["CERT_SCHEMA", "module_name", "write_certificates", "check_certificates"]


def _cert_filename(certificate: dict) -> str:
    return f"{certificate['module']}.json"


def write_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Write one JSON file per module certificate; returns written names."""
    return write_certificate_set(certificates, directory, _cert_filename)


def check_certificates(certificates: Dict[str, dict], directory) -> List[str]:
    """Diff freshly computed certificates against a committed directory.

    Returns a list of human-readable drift messages (empty means in sync):
    missing files, stale files with no current module, and content drift.
    """
    return check_certificate_set(certificates, directory, _cert_filename)
