"""The five designs of Table V.

* ``Baseline`` — high-performance insecure system: max frequency, no idle
  injection, no balloon.
* ``NoisyBaseline`` — a new random (DVFS, idle, balloon) triple per run,
  fixed for the whole execution.
* ``RandomInputs`` — the triple changes randomly at runtime, each value
  held for a random duration.
* ``MayaConstant`` — Maya's formal controller tracking a constant target.
* ``MayaGS`` — the proposal: formal controller + gaussian-sinusoid mask.
"""

from __future__ import annotations

import numpy as np

from ..core.config import MayaConfig
from ..core.maya import MayaDesign, MayaInstance, build_maya_design
from ..machine import ActuatorBank, ActuatorSettings, PlatformSpec, SimulatedMachine
from .base import Defense

__all__ = [
    "Baseline",
    "NoisyBaseline",
    "RandomInputs",
    "MayaDefense",
    "DESIGN_NAMES",
    "DefenseFactory",
]

#: Table V, in the paper's order.
DESIGN_NAMES = ("baseline", "noisy_baseline", "random_inputs", "maya_constant", "maya_gs")


class Baseline(Defense):
    """High-performance insecure system without added noise."""

    name = "baseline"
    constant_settings = True

    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        self._settings = machine.bank.max_performance()

    def initial_settings(self) -> ActuatorSettings:
        return self._settings

    def decide(self, measured_w: float) -> ActuatorSettings:
        return self._settings


class NoisyBaseline(Defense):
    """One random actuation triple per run, held for the whole execution."""

    name = "noisy_baseline"
    constant_settings = True

    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        self._settings = machine.bank.random_settings(rng)

    def initial_settings(self) -> ActuatorSettings:
        return self._settings

    def decide(self, measured_w: float) -> ActuatorSettings:
        return self._settings


class RandomInputs(Defense):
    """Randomly changing DVFS/idle/balloon levels at runtime.

    Each triple is held for a random stretch (60-300 ms at the 20 ms
    interval) before a new one is drawn, mirroring Table V's description
    and the dense noise texture visible in Figure 11b.
    """

    name = "random_inputs"

    def __init__(self, hold_intervals: tuple[int, int] = (3, 15)) -> None:
        super().__init__()
        self.hold_intervals = hold_intervals

    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        self._bank = machine.bank
        self._rng = rng
        self._hold_left = 0
        self._settings = self._draw()

    def _draw(self) -> ActuatorSettings:
        self._hold_left = int(
            self._rng.integers(self.hold_intervals[0], self.hold_intervals[1] + 1)
        )
        return self._bank.random_settings(self._rng)

    def initial_settings(self) -> ActuatorSettings:
        return self._settings

    def decide(self, measured_w: float) -> ActuatorSettings:
        self._hold_left -= 1
        if self._hold_left <= 0:
            self._settings = self._draw()
        return self._settings


class MayaDefense(Defense):
    """Maya with any mask family (``maya_constant`` / ``maya_gs``)."""

    def __init__(self, design: MayaDesign) -> None:
        super().__init__()
        self.design = design
        self.name = (
            "maya_gs" if design.config.mask_family == "gaussian_sinusoid"
            else f"maya_{design.config.mask_family}"
        )
        self._instance: MayaInstance | None = None

    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        if machine.spec.name != self.design.spec.name:
            raise ValueError(
                f"design built for {self.design.spec.name}, machine is {machine.spec.name}"
            )
        self._instance = self.design.instantiate(rng)

    def initial_settings(self) -> ActuatorSettings:
        assert self._instance is not None, "prepare() must be called first"
        return self._instance.initial_settings()

    def decide(self, measured_w: float) -> ActuatorSettings:
        assert self._instance is not None, "prepare() must be called first"
        settings = self._instance.decide(measured_w)
        self.current_target_w = self._instance.current_target_w
        return settings

    def diagnostics(self) -> "dict | None":
        if self._instance is None:
            return None
        return self._instance.controller.diagnostics()

    # maya: batch-twin(MayaDefense.decide)
    @staticmethod
    def decide_fleet(
        defenses: "list[MayaDefense]", measured_w: "list[float]"
    ) -> "list[ActuatorSettings]":
        """Batched :meth:`decide` for a lock-step fleet of Maya defenses.

        Delegates to :meth:`MayaInstance.decide_fleet` (batched mask draw +
        per-session Equation-1 update) and mirrors each defense's target
        bookkeeping, emitting exactly what B serial ``decide`` calls would.
        """
        instances = []
        for defense in defenses:
            assert defense._instance is not None, "prepare() must be called first"
            instances.append(defense._instance)
        settings = MayaInstance.decide_fleet(instances, measured_w)
        for defense, instance in zip(defenses, instances):
            defense.current_target_w = instance.current_target_w
        return settings

    @staticmethod
    def decide_fleet_fast(
        defenses: "list[MayaDefense]", measured_w: "list[float]"
    ) -> "list[ActuatorSettings]":
        """Fast-tier :meth:`decide_fleet` (see ``MayaInstance.decide_fleet_fast``)."""
        instances = []
        for defense in defenses:
            assert defense._instance is not None, "prepare() must be called first"
            instances.append(defense._instance)
        settings = MayaInstance.decide_fleet_fast(instances, measured_w)
        for defense, instance in zip(defenses, instances):
            defense.current_target_w = instance.current_target_w
        return settings


class DefenseFactory:
    """Builds fresh per-run defense instances for a platform.

    Maya designs (system ID + synthesis) are expensive, so the factory
    builds them once per platform and reuses them across runs — exactly the
    deployment model of the paper, where the controller matrices are fixed
    at design time and only the runtime state and mask stream are new.

    A factory is fully described by ``(spec, seed, design_overrides)``:
    ``design_overrides`` are factory-level :class:`MayaConfig` defaults
    (e.g. an :class:`ExperimentScale`'s ``sysid_intervals`` budget) merged
    under any per-call overrides.  The parallel execution layer
    (:mod:`repro.exec`) relies on this declarative description to rebuild
    an equivalent factory inside worker processes.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        seed: int = 0,
        design_overrides: dict | None = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.design_overrides: dict = dict(design_overrides or {})
        self._designs: dict[str, MayaDesign] = {}

    def maya_design(self, mask_family: str, **config_overrides: object) -> MayaDesign:
        # Keyed by the *call-level* overrides only: factory-level defaults
        # are constant per instance, so they never disambiguate entries.
        key = mask_family + repr(sorted(config_overrides.items()))
        if key not in self._designs:
            merged = {**self.design_overrides, **config_overrides}
            config = MayaConfig(mask_family=mask_family, **merged)
            self._designs[key] = build_maya_design(self.spec, config, seed=self.seed)
        return self._designs[key]

    def create(self, design_name: str) -> Defense:
        """Instantiate one Table V design by name."""
        if design_name == "baseline":
            return Baseline()
        if design_name == "noisy_baseline":
            return NoisyBaseline()
        if design_name == "random_inputs":
            return RandomInputs()
        if design_name == "maya_constant":
            return MayaDefense(self.maya_design("constant"))
        if design_name == "maya_gs":
            return MayaDefense(self.maya_design("gaussian_sinusoid"))
        raise KeyError(f"unknown design {design_name!r}; known: {DESIGN_NAMES}")
