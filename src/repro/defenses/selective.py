"""Selective activation of Maya (Section V / Section VII-E).

The paper proposes reducing Maya's overhead by activating it "only in
sections of the application where it is needed, similar to how power
governors can be invoked in Linux".  :class:`SelectiveMaya` implements
that: outside the protected window the machine runs at full performance;
inside it, the full Maya loop (fresh controller state and mask stream)
takes over.

The security/overhead trade is exactly as expected: activity outside the
window is exposed, activity inside is obfuscated, and the slowdown scales
with the protected fraction of the execution.
"""

from __future__ import annotations

import numpy as np

from ..core.maya import MayaDesign, MayaInstance
from ..machine import ActuatorSettings, SimulatedMachine
from .base import Defense

__all__ = ["SelectiveMaya"]


class SelectiveMaya(Defense):
    """Maya that is only active during ``[start_s, stop_s)``."""

    name = "maya_selective"

    def __init__(self, design: MayaDesign, start_s: float, stop_s: float,
                 interval_s: float = 0.020) -> None:
        if not 0.0 <= start_s < stop_s:
            raise ValueError("need 0 <= start_s < stop_s")
        super().__init__()
        self.design = design
        self.start_s = start_s
        self.stop_s = stop_s
        self.interval_s = interval_s
        self._instance: MayaInstance | None = None
        self._elapsed_intervals = 0

    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        if machine.spec.name != self.design.spec.name:
            raise ValueError(
                f"design built for {self.design.spec.name}, machine is {machine.spec.name}"
            )
        self._machine = machine
        self._instance = self.design.instantiate(rng)
        self._elapsed_intervals = 0
        self._was_active = False

    @property
    def _now_s(self) -> float:
        return self._elapsed_intervals * self.interval_s

    def _active(self) -> bool:
        return self.start_s <= self._now_s < self.stop_s

    def initial_settings(self) -> ActuatorSettings:
        assert self._instance is not None, "prepare() must be called first"
        if self._active():
            return self._instance.initial_settings()
        return self._machine.bank.max_performance()

    def decide(self, measured_w: float) -> ActuatorSettings:
        assert self._instance is not None, "prepare() must be called first"
        self._elapsed_intervals += 1
        if not self._active():
            self.current_target_w = float("nan")
            self._was_active = False
            return self._machine.bank.max_performance()
        if not self._was_active:
            # (Re-)entering the protected window: fresh controller state,
            # so stale estimates from minutes ago cannot misfire.
            self._instance.controller.reset()
            self._was_active = True
        settings = self._instance.decide(measured_w)
        self.current_target_w = self._instance.current_target_w
        return settings
