"""The defense designs compared in the paper (Table V)."""

from .base import Defense, decide_batch, decide_batch_fast
from .selective import SelectiveMaya
from .designs import (
    DESIGN_NAMES,
    Baseline,
    DefenseFactory,
    MayaDefense,
    NoisyBaseline,
    RandomInputs,
)

__all__ = [
    "Defense",
    "decide_batch",
    "decide_batch_fast",
    "DESIGN_NAMES",
    "Baseline",
    "DefenseFactory",
    "MayaDefense",
    "NoisyBaseline",
    "RandomInputs",
    "SelectiveMaya",
]
