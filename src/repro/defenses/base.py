"""Common interface of the five designs compared in Table V.

A :class:`Defense` instance lives for exactly one execution (one trace).
The session loop (:mod:`repro.core.runtime`) calls :meth:`initial_settings`
once and then :meth:`decide` after each control interval with the power it
just measured.  ``current_target_w`` exposes the mask value so traces can
log it (NaN for designs with no target).
"""

from __future__ import annotations

import abc

import numpy as np

from ..machine import ActuatorSettings, SimulatedMachine

__all__ = ["Defense"]


class Defense(abc.ABC):
    """Per-run defense instance."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self.current_target_w = float("nan")

    @abc.abstractmethod
    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        """Bind this instance to a machine and its per-run randomness."""

    @abc.abstractmethod
    def initial_settings(self) -> ActuatorSettings:
        """Settings applied during the first control interval."""

    @abc.abstractmethod
    def decide(self, measured_w: float) -> ActuatorSettings:
        """Settings for the next interval, given the last measurement."""
