"""Common interface of the five designs compared in Table V.

A :class:`Defense` instance lives for exactly one execution (one trace).
The session loop (:mod:`repro.core.runtime`) calls :meth:`initial_settings`
once and then :meth:`decide` after each control interval with the power it
just measured.  ``current_target_w`` exposes the mask value so traces can
log it (NaN for designs with no target).
"""

from __future__ import annotations

import abc

import numpy as np

from ..machine import ActuatorSettings, SimulatedMachine

__all__ = ["Defense", "decide_batch", "decide_batch_fast"]


class Defense(abc.ABC):
    """Per-run defense instance."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: True when, after :meth:`prepare`, every :meth:`decide` returns the
    #: same settings regardless of the measurement, consumes no RNG, and
    #: leaves ``current_target_w``/:meth:`diagnostics` untouched.  The fast
    #: tier uses this to evaluate whole sessions in one shot instead of
    #: interval-by-interval.
    constant_settings: bool = False

    def __init__(self) -> None:
        self.current_target_w = float("nan")

    @abc.abstractmethod
    def prepare(self, machine: SimulatedMachine, rng: np.random.Generator) -> None:
        """Bind this instance to a machine and its per-run randomness."""

    @abc.abstractmethod
    def initial_settings(self) -> ActuatorSettings:
        """Settings applied during the first control interval."""

    @abc.abstractmethod
    def decide(self, measured_w: float) -> ActuatorSettings:
        """Settings for the next interval, given the last measurement."""

    def diagnostics(self) -> "dict | None":
        """Controller-internal state of the last :meth:`decide`, if any.

        Telemetry polls this after each interval; open-loop designs return
        None.  The dict contains plain ints only — the defense never sees
        or stores telemetry objects (the out-of-band invariant, MAYA032).
        """
        return None


def decide_batch(defenses, measured_w) -> list:
    """Decide one interval for a lock-step fleet of per-session defenses.

    Maya instances are routed through :meth:`MayaDefense.decide_fleet`,
    which draws all mask targets through the batched mask evaluation hook
    and then applies the Equation-1 state update per session; every other
    defense falls back to its own :meth:`Defense.decide`.  Each defense
    consumes exactly the per-session values it would see serially, so the
    emitted settings are identical to B independent ``decide`` calls.
    """
    from .designs import MayaDefense

    settings: list = [None] * len(defenses)
    maya_indices = [
        index for index, defense in enumerate(defenses)
        if isinstance(defense, MayaDefense)
    ]
    if maya_indices:
        fleet_settings = MayaDefense.decide_fleet(
            [defenses[index] for index in maya_indices],
            [float(measured_w[index]) for index in maya_indices],
        )
        for index, decided in zip(maya_indices, fleet_settings):
            settings[index] = decided
    for index, defense in enumerate(defenses):
        if settings[index] is None:
            settings[index] = defense.decide(float(measured_w[index]))
    return settings


def decide_batch_fast(defenses, measured_w) -> list:
    """Fast-tier :func:`decide_batch`: Maya routes through the BLAS fleet step.

    Identical routing, but Maya instances decide through
    :meth:`MayaDefense.decide_fleet_fast` (vectorized mask sin + one fleet
    matmul, certified-equivalent rather than bit-identical).  Non-Maya
    defenses are untouched — their per-session ``decide`` is already
    scalar-cheap and exact.
    """
    from .designs import MayaDefense

    settings: list = [None] * len(defenses)
    maya_indices = [
        index for index, defense in enumerate(defenses)
        if isinstance(defense, MayaDefense)
    ]
    if maya_indices:
        fleet_settings = MayaDefense.decide_fleet_fast(
            [defenses[index] for index in maya_indices],
            [float(measured_w[index]) for index in maya_indices],
        )
        for index, decided in zip(maya_indices, fleet_settings):
            settings[index] = decided
    for index, defense in enumerate(defenses):
        if settings[index] is None:
            settings[index] = defense.decide(float(measured_w[index]))
    return settings
