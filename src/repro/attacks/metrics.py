"""Classification metrics: confusion matrices as in Figures 6, 8 and 9."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["confusion_matrix", "ConfusionResult"]


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Row-normalized confusion matrix (rows: true labels).

    Matches the paper's presentation: entry (i, j) is the fraction of
    class-i samples predicted as class j; each row sums to 1 (or is all
    zeros if the class never occurs).
    """
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    counts = np.zeros((n_classes, n_classes))
    np.add.at(counts, (y_true, y_pred), 1.0)
    row_sums = counts.sum(axis=1, keepdims=True)
    return np.divide(counts, row_sums, out=np.zeros_like(counts), where=row_sums > 0)


@dataclass(frozen=True)
class ConfusionResult:
    """A classification outcome with the paper's summary statistics."""

    matrix: np.ndarray
    class_names: tuple[str, ...]

    @property
    def n_classes(self) -> int:
        return self.matrix.shape[0]

    @property
    def average_accuracy(self) -> float:
        """Mean of the diagonal — the paper's 'average accuracy'."""
        return float(np.mean(np.diag(self.matrix)))

    @property
    def chance_accuracy(self) -> float:
        return 1.0 / self.n_classes

    def formatted(self, decimals: int = 2) -> str:
        """Render the matrix like the paper's figures."""
        header = "true\\pred " + " ".join(f"{j:>5d}" for j in range(self.n_classes))
        lines = [header]
        for i in range(self.n_classes):
            row = " ".join(f"{self.matrix[i, j]:5.{decimals}f}" for j in range(self.n_classes))
            lines.append(f"{i:>9d} {row}")
        lines.append(
            f"average accuracy: {self.average_accuracy:.0%} "
            f"(chance {self.chance_accuracy:.0%})"
        )
        return "\n".join(lines)
