"""Attacker substrate: ML-based power side-channel attacks (Table IV)."""

from .covert import (
    CovertChannelResult,
    CovertReceiver,
    CovertSender,
    random_bits,
)
from .features import FeatureConfig, TraceFeaturizer, segment_trace
from .metrics import ConfusionResult, confusion_matrix
from .mlp import MLPClassifier, MLPConfig
from .template import GaussianTemplateClassifier
from .pipeline import (
    AttackOutcome,
    AttackScenario,
    run_attack,
    sample_runs,
    simulate_runs,
    train_and_evaluate,
)

__all__ = [
    "CovertChannelResult",
    "CovertReceiver",
    "CovertSender",
    "random_bits",
    "FeatureConfig",
    "TraceFeaturizer",
    "segment_trace",
    "ConfusionResult",
    "confusion_matrix",
    "MLPClassifier",
    "MLPConfig",
    "GaussianTemplateClassifier",
    "AttackOutcome",
    "AttackScenario",
    "run_attack",
    "sample_runs",
    "simulate_runs",
    "train_and_evaluate",
]
