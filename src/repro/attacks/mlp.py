"""From-scratch multilayer perceptron (the attacker's classifier).

The paper's attacker trains "a three-layer multilayer perceptron (MLP)
neural network [using] ReLU units for its hidden layers and the output layer
uses Logsoftmax" (Section VI-A).  This module implements exactly that in
numpy: ReLU hidden layers, log-softmax output, negative-log-likelihood loss,
minibatch Adam, and early stopping on validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.rng import spawn

__all__ = ["MLPConfig", "MLPClassifier"]


@dataclass(frozen=True)
class MLPConfig:
    """Hyperparameters of the attacker's network."""

    hidden_sizes: tuple[int, ...] = (128, 64)
    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 60
    #: Early-stopping patience, in epochs without validation improvement.
    patience: int = 8
    weight_decay: float = 1e-5
    seed: int = 0


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class MLPClassifier:
    """ReLU MLP with log-softmax output, trained with Adam."""

    def __init__(self, n_features: int, n_classes: int, config: MLPConfig | None = None) -> None:
        if n_features < 1 or n_classes < 2:
            raise ValueError("need at least one feature and two classes")
        self.config = config or MLPConfig()
        self.n_features = n_features
        self.n_classes = n_classes
        rng = spawn(self.config.seed, "mlp-init")

        sizes = (n_features, *self.config.hidden_sizes, n_classes)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialization, appropriate for ReLU layers.
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam_state: list[dict] | None = None
        self.history: list[dict] = []

    # -- forward / backward ---------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return log-probabilities and per-layer activations."""
        activations = [x]
        h = x
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if layer < len(self.weights) - 1:
                h = np.maximum(z, 0.0)
            else:
                h = z
            activations.append(h)
        return _log_softmax(activations[-1]), activations

    def _backward(
        self, activations: list[np.ndarray], log_probs: np.ndarray, labels: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        batch = labels.size
        probs = np.exp(log_probs)
        delta = probs
        delta[np.arange(batch), labels] -= 1.0
        delta /= batch

        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (activations[layer] > 0.0)
        return grads_w, grads_b

    def _adam_step(
        self, grads_w: list[np.ndarray], grads_b: list[np.ndarray], step: int
    ) -> None:
        cfg = self.config
        if self._adam_state is None:
            self._adam_state = [
                {
                    "mw": np.zeros_like(w), "vw": np.zeros_like(w),
                    "mb": np.zeros_like(b), "vb": np.zeros_like(b),
                }
                for w, b in zip(self.weights, self.biases)
            ]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for layer, state in enumerate(self._adam_state):
            gw = grads_w[layer] + cfg.weight_decay * self.weights[layer]
            gb = grads_b[layer]
            state["mw"] = beta1 * state["mw"] + (1 - beta1) * gw
            state["vw"] = beta2 * state["vw"] + (1 - beta2) * gw**2
            state["mb"] = beta1 * state["mb"] + (1 - beta1) * gb
            state["vb"] = beta2 * state["vb"] + (1 - beta2) * gb**2
            corr1 = 1 - beta1**step
            corr2 = 1 - beta2**step
            self.weights[layer] -= cfg.learning_rate * (
                (state["mw"] / corr1) / (np.sqrt(state["vw"] / corr2) + eps)
            )
            self.biases[layer] -= cfg.learning_rate * (
                (state["mb"] / corr1) / (np.sqrt(state["vb"] / corr2) + eps)
            )

    # -- public API ------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "MLPClassifier":
        """Train with minibatch Adam and validation early stopping."""
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train, dtype=int)
        if x_train.shape[0] != y_train.size:
            raise ValueError("x_train and y_train length mismatch")
        cfg = self.config
        rng = spawn(cfg.seed, "mlp-train")

        best_metric = -np.inf
        best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        stall = 0
        step = 0
        for epoch in range(cfg.max_epochs):
            order = rng.permutation(x_train.shape[0])
            for start in range(0, order.size, cfg.batch_size):
                batch_idx = order[start:start + cfg.batch_size]
                log_probs, activations = self._forward(x_train[batch_idx])
                grads_w, grads_b = self._backward(
                    activations, log_probs, y_train[batch_idx]
                )
                step += 1
                self._adam_step(grads_w, grads_b, step)

            record = {"epoch": epoch, "train_acc": self.score(x_train, y_train)}
            if x_val is not None and y_val is not None and len(y_val):
                metric = self.score(x_val, y_val)
                record["val_acc"] = metric
            else:
                metric = record["train_acc"]
            self.history.append(record)

            if metric > best_metric + 1e-6:
                best_metric = metric
                best_params = (
                    [w.copy() for w in self.weights],
                    [b.copy() for b in self.biases],
                )
                stall = 0
            else:
                stall += 1
                if stall >= cfg.patience:
                    break

        if best_params is not None:
            self.weights, self.biases = best_params
        return self

    def predict_log_proba(self, x: np.ndarray) -> np.ndarray:
        log_probs, _ = self._forward(np.asarray(x, dtype=float))
        return log_probs

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_log_proba(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y, dtype=int)))
