"""Classical template attack (the statistical attacker of Section III).

The threat model covers attackers using "machine learning, signal
processing, and statistics".  Alongside the MLP, this module provides the
textbook statistical classifier: Gaussian templates.  For each class the
attacker estimates a mean vector and a (regularized, diagonal-loaded)
covariance over trace features; classification is maximum likelihood.

Template attacks are the standard tool of the side-channel literature
(Chari et al., 2002); they need far less data than an MLP and give the
defense a second, independent adversary to beat.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianTemplateClassifier"]


class GaussianTemplateClassifier:
    """Per-class multivariate Gaussian templates with shared shrinkage."""

    def __init__(self, shrinkage: float = 0.2) -> None:
        """``shrinkage`` blends each class covariance toward a spherical
        one; 0 trusts the sample covariance, 1 reduces to nearest-mean."""
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage
        self._means: np.ndarray | None = None
        self._precisions: list[np.ndarray] | None = None
        self._log_dets: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianTemplateClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2 or x.shape[0] != y.size:
            raise ValueError("x must be (n, d) aligned with y")
        self.classes_ = np.unique(y)
        dim = x.shape[1]
        means = []
        precisions = []
        log_dets = []
        for label in self.classes_:
            rows = x[y == label]
            if rows.shape[0] < 2:
                raise ValueError(f"class {label} needs at least two samples")
            mean = rows.mean(axis=0)
            cov = np.cov(rows, rowvar=False)
            cov = np.atleast_2d(cov)
            # Shrink toward the spherical covariance and load the diagonal
            # so templates stay invertible with few traces (standard
            # practice in template attacks).
            spherical = np.eye(dim) * max(np.trace(cov) / dim, 1e-9)
            cov = (1 - self.shrinkage) * cov + self.shrinkage * spherical
            cov += 1e-6 * np.eye(dim)
            sign, log_det = np.linalg.slogdet(cov)
            if sign <= 0:
                raise np.linalg.LinAlgError("covariance not positive definite")
            means.append(mean)
            precisions.append(np.linalg.inv(cov))
            log_dets.append(log_det)
        self._means = np.asarray(means)
        self._precisions = precisions
        self._log_dets = np.asarray(log_dets)
        return self

    def log_likelihood(self, x: np.ndarray) -> np.ndarray:
        """Per-class log likelihood, shape (n, n_classes)."""
        if self._means is None:
            raise RuntimeError("fit() must be called first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        scores = np.empty((x.shape[0], self._means.shape[0]))
        for index, (mean, precision, log_det) in enumerate(
            zip(self._means, self._precisions, self._log_dets)
        ):
            centered = x - mean
            mahalanobis = np.einsum("ni,ij,nj->n", centered, precision, centered)
            scores[:, index] = -0.5 * (mahalanobis + log_det)
        return scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.log_likelihood(x)  # raises RuntimeError when unfit
        assert self.classes_ is not None
        return self.classes_[scores.argmax(axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y, dtype=int)))
