"""Trace preprocessing: the attacker's feature pipeline (Section VI-A).

For the application- and video-detection attacks the paper segments each
trace, averages five consecutive measurements "to remove the effects of
noise", quantizes power into 10 levels, and one-hot encodes the result.  For
the webpage attack it uses the trace's FFT magnitudes, because browser
activity "has varying rates of change in a short duration".

:class:`TraceFeaturizer` implements both modes.  Quantization bounds are
learned from the training data only (the attacker cannot know the test
distribution in advance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeatureConfig", "TraceFeaturizer", "segment_trace"]


def segment_trace(trace: np.ndarray, segment_len: int, stride: int | None = None) -> np.ndarray:
    """Extract fixed-length segments from a 1-D trace.

    Returns an array of shape ``(n_segments, segment_len)``.  By default
    segments do not overlap (``stride = segment_len``).
    """
    trace = np.asarray(trace, dtype=float).reshape(-1)
    if segment_len < 1:
        raise ValueError("segment_len must be positive")
    stride = segment_len if stride is None else stride
    if stride < 1:
        raise ValueError("stride must be positive")
    if trace.size < segment_len:
        raise ValueError(
            f"trace of {trace.size} samples too short for segments of {segment_len}"
        )
    # All windows as a zero-copy strided view, then stride selection; the
    # final copy materializes an owned C-contiguous (n_segments, segment_len)
    # array exactly like the old per-segment slicing loop produced.
    windows = np.lib.stride_tricks.sliding_window_view(trace, segment_len)
    return windows[::stride].copy()


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration of the attacker's preprocessing."""

    mode: str = "onehot"  # "onehot" or "fft"
    #: Samples per segment fed to one classification (before pooling).
    segment_len: int = 300
    #: Consecutive measurements averaged together (paper: 5).
    pool: int = 5
    #: Quantization levels (paper: 10).
    n_levels: int = 10
    #: FFT bins kept in "fft" mode (magnitudes of the lowest frequencies).
    fft_bins: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("onehot", "fft"):
            raise ValueError("mode must be 'onehot' or 'fft'")
        if self.segment_len < self.pool:
            raise ValueError("segment_len must be >= pool")
        if self.n_levels < 2:
            raise ValueError("need at least two quantization levels")


class TraceFeaturizer:
    """Learned preprocessing from raw power segments to MLP features."""

    def __init__(self, config: FeatureConfig | None = None) -> None:
        self.config = config or FeatureConfig()
        self._low: float | None = None
        self._high: float | None = None

    @property
    def n_features(self) -> int:
        cfg = self.config
        if cfg.mode == "onehot":
            return (cfg.segment_len // cfg.pool) * cfg.n_levels
        return min(cfg.fft_bins, cfg.segment_len // 2)

    def fit(self, segments: np.ndarray) -> "TraceFeaturizer":
        """Learn quantization bounds from training segments."""
        segments = np.asarray(segments, dtype=float)
        # Near-min/max bounds (only the most extreme 0.1% clipped): the
        # grid must cover transient spikes, like the paper's 10-level
        # quantization over the observed power range.
        self._low = float(np.quantile(segments, 0.001))
        self._high = float(np.quantile(segments, 0.999))
        if self._high - self._low < 1e-9:
            self._high = self._low + 1e-9
        return self

    def transform(self, segments: np.ndarray) -> np.ndarray:
        """Map segments of shape (n, segment_len) to feature matrix."""
        segments = np.atleast_2d(np.asarray(segments, dtype=float))
        if segments.shape[1] != self.config.segment_len:
            raise ValueError(
                f"expected segments of {self.config.segment_len} samples, "
                f"got {segments.shape[1]}"
            )
        if self.config.mode == "onehot":
            return self._onehot_features(segments)
        return self._fft_features(segments)

    def fit_transform(self, segments: np.ndarray) -> np.ndarray:
        return self.fit(segments).transform(segments)

    # -- internals -------------------------------------------------------

    def _pooled(self, segments: np.ndarray) -> np.ndarray:
        cfg = self.config
        n_pooled = cfg.segment_len // cfg.pool
        trimmed = segments[:, : n_pooled * cfg.pool]
        return trimmed.reshape(segments.shape[0], n_pooled, cfg.pool).mean(axis=2)

    def _onehot_features(self, segments: np.ndarray) -> np.ndarray:
        if self._low is None or self._high is None:
            raise RuntimeError("featurizer must be fit before transform")
        cfg = self.config
        pooled = self._pooled(segments)
        frac = (pooled - self._low) / (self._high - self._low)
        levels = np.clip((frac * cfg.n_levels).astype(int), 0, cfg.n_levels - 1)
        n, m = levels.shape
        onehot = np.zeros((n, m, cfg.n_levels))
        rows = np.repeat(np.arange(n), m)
        cols = np.tile(np.arange(m), n)
        onehot[rows, cols, levels.ravel()] = 1.0
        return onehot.reshape(n, m * cfg.n_levels)

    def _fft_features(self, segments: np.ndarray) -> np.ndarray:
        spectra = np.abs(np.fft.rfft(segments - segments.mean(axis=1, keepdims=True), axis=1))
        spectra = spectra[:, 1:self.n_features + 1]
        # Log magnitudes compress the dynamic range so strong low-frequency
        # content cannot drown the informative burst lines, and per-segment
        # normalization keeps only the spectrum's shape — the attacker does
        # not care about the absolute power scale.
        spectra = np.log1p(spectra)
        norms = np.linalg.norm(spectra, axis=1, keepdims=True)
        return spectra / np.maximum(norms, 1e-12)
