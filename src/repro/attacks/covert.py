"""The remote power covert channel that Maya thwarted (Section I).

Shao et al. exfiltrate data across a building's power delivery network: a
victim-resident sender modulates the machine's power (high power = 1, low
power = 0) and a receiver on another outlet of the same network decodes the
bits — one bit per ~33 ms in the original attack, with no physical access
to the victim.

This module implements the channel against the simulated machine:

* :class:`CovertSender` is a workload whose activity encodes a bit string
  (an on-off-keyed power pattern);
* :class:`CovertReceiver` decodes bits from outlet samples by thresholding
  per-bit mean power against the trace's own median.

Against the Baseline the channel is essentially error-free.  Under Maya,
power follows the mask rather than the sender, and the received bits decay
to coin flips — the result Shao et al. measured when they deployed Maya
(Section I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import OutletMeter, PlatformSpec, Trace, spawn
from ..workloads.phases import Phase, PhaseProgram

__all__ = ["CovertSender", "CovertReceiver", "CovertChannelResult", "random_bits"]


def random_bits(n_bits: int, rng: np.random.Generator) -> np.ndarray:
    """A payload with a balanced number of 0s and 1s, shuffled."""
    if n_bits < 2:
        raise ValueError("need at least two bits")
    bits = np.zeros(n_bits, dtype=int)
    bits[: n_bits // 2] = 1
    rng.shuffle(bits)
    return bits


class CovertSender:
    """Builds the sender workload: per-bit high/low activity periods."""

    def __init__(
        self,
        bits: np.ndarray,
        bit_period_s: float = 0.2,
        high_activity: float = 0.85,
        low_activity: float = 0.05,
    ) -> None:
        bits = np.asarray(bits, dtype=int)
        if bits.size == 0 or not set(np.unique(bits)) <= {0, 1}:
            raise ValueError("bits must be a non-empty 0/1 array")
        if bit_period_s <= 0:
            raise ValueError("bit_period_s must be positive")
        self.bits = bits
        self.bit_period_s = bit_period_s
        self.high_activity = high_activity
        self.low_activity = low_activity

    @property
    def duration_s(self) -> float:
        return self.bits.size * self.bit_period_s

    def program(self) -> PhaseProgram:
        """The on-off-keyed transmission as a phase program."""
        phases = []
        for index, bit in enumerate(self.bits):
            activity = self.high_activity if bit else self.low_activity
            phases.append(
                Phase(
                    name=f"bit_{index}_{bit}",
                    work_units=self.bit_period_s,
                    activity=activity,
                    core_fraction=1.0,
                    memory_intensity=0.0,
                )
            )
        return PhaseProgram(name="covert_sender", family="covert", phases=tuple(phases))


@dataclass(frozen=True)
class CovertChannelResult:
    """Decoding outcome of one transmission."""

    sent: np.ndarray
    received: np.ndarray
    bit_error_rate: float

    @property
    def n_bits(self) -> int:
        return self.sent.size

    @property
    def channel_closed(self) -> bool:
        """BER near 0.5 means the receiver is guessing."""
        return self.bit_error_rate > 0.3


class CovertReceiver:
    """Decodes bits from outlet power samples (threshold detector)."""

    def __init__(self, spec: PlatformSpec, seed: int = 0, run_id: object = 0) -> None:
        self.spec = spec
        self._meter = OutletMeter(spec, spawn(seed, "covert-meter", run_id))

    def decode(self, trace: Trace, sender: CovertSender) -> CovertChannelResult:
        """Sample the trace through the outlet and threshold per bit slot.

        The receiver knows the bit period and alignment (best case for the
        attacker) and compares each slot's mean power against the whole
        transmission's median — the standard OOK decision rule.
        """
        samples = self._meter.sample_trace(trace.power_w, trace.tick_s)
        interval = self._meter.sample_interval_s
        per_bit = sender.bit_period_s / interval
        received = []
        for index in range(sender.bits.size):
            start = int(round(index * per_bit))
            stop = int(round((index + 1) * per_bit))
            stop = min(stop, samples.size)
            if start >= stop:
                received.append(0)
                continue
            received.append(float(samples[start:stop].mean()))
        levels = np.asarray(received, dtype=float)
        threshold = float(np.median(levels))
        decoded = (levels > threshold).astype(int)
        errors = int(np.sum(decoded != sender.bits))
        return CovertChannelResult(
            sent=sender.bits.copy(),
            received=decoded,
            bit_error_rate=errors / sender.bits.size,
        )
