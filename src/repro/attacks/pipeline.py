"""End-to-end ML power attacks (Table IV / Section VI).

The pipeline mirrors the paper's attacker exactly:

1. *Collect*: run each victim workload many times under the deployed
   defense (the attacker adapts: training data is gathered with the defense
   on), recording power through a sensor (RAPL counters or the AC outlet).
2. *Featurize*: segment traces; either 5-sample averaging + 10-level
   quantization + one-hot (applications, videos) or FFT magnitudes
   (webpages).
3. *Train*: a ReLU MLP with log-softmax output on 60% of the runs,
   validated on 20%, tested on the held-out 20%.
4. *Report*: row-normalized confusion matrix and average accuracy.

Splits are by *run*, never by segment, so segments of one execution can
never leak between train and test.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .. import telemetry
from ..defenses.designs import DefenseFactory
from ..exec import SessionJob, record_run, run_sessions
from ..machine import OutletMeter, PlatformSpec, RaplSensor, Trace, spawn
from .features import FeatureConfig, TraceFeaturizer, segment_trace
from .metrics import ConfusionResult, confusion_matrix
from .mlp import MLPClassifier, MLPConfig

__all__ = [
    "AttackScenario",
    "AttackOutcome",
    "scenario_jobs",
    "simulate_runs",
    "sample_runs",
    "train_and_evaluate",
    "run_attack",
]


@dataclass(frozen=True)
class AttackScenario:
    """Full description of one ML attack experiment."""

    name: str
    spec: PlatformSpec
    #: Workload registry names, in label order.
    class_workloads: tuple[str, ...]
    #: Table V design the victim deploys.
    defense: str
    runs_per_class: int = 24
    duration_s: float = 20.0
    #: "rapl" (attacks 1 and 2) or "outlet" (attack 3).
    sensor: str = "rapl"
    #: Attacker's sampling interval (RAPL mode; the outlet meter is fixed
    #: at 50 ms by the AC frequency).
    sample_interval_s: float = 0.020
    #: Wall-clock length and stride of the classified segments.
    segment_duration_s: float = 10.0
    segment_stride_s: float = 5.0
    feature_mode: str = "onehot"
    pool: int = 5
    n_levels: int = 10
    fft_bins: int = 64
    mlp: MLPConfig = field(default_factory=MLPConfig)
    seed: int = 0
    train_frac: float = 0.6
    val_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.sensor not in ("rapl", "outlet"):
            raise ValueError("sensor must be 'rapl' or 'outlet'")
        if len(self.class_workloads) < 2:
            raise ValueError("an attack needs at least two classes")
        if not 0 < self.train_frac + self.val_frac < 1:
            raise ValueError("train_frac + val_frac must leave a test share")

    @property
    def effective_interval_s(self) -> float:
        if self.sensor == "outlet":
            return OutletMeter.CYCLES_PER_SAMPLE / OutletMeter.AC_FREQUENCY_HZ
        return self.sample_interval_s

    def feature_config(self) -> FeatureConfig:
        segment_len = max(int(round(self.segment_duration_s / self.effective_interval_s)), 2)
        return FeatureConfig(
            mode=self.feature_mode,
            segment_len=segment_len,
            pool=self.pool,
            n_levels=self.n_levels,
            fft_bins=self.fft_bins,
        )

    @property
    def segment_stride(self) -> int:
        return max(int(round(self.segment_stride_s / self.effective_interval_s)), 1)


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack: the paper's confusion matrix plus context."""

    scenario: AttackScenario
    result: ConfusionResult
    n_train: int
    n_val: int
    n_test: int

    @property
    def average_accuracy(self) -> float:
        return self.result.average_accuracy

    @property
    def chance_accuracy(self) -> float:
        return self.result.chance_accuracy


def scenario_jobs(
    scenario: AttackScenario, factory: DefenseFactory
) -> list[SessionJob]:
    """The declarative session jobs behind one scenario's collection.

    In label-major, run-minor order — the order :func:`simulate_runs`
    reshapes back into the paper's ``classes x runs`` nesting.  Exposed so
    tooling (the bench's backend-selection probe, job-count accounting) can
    reason about the same job list the pipeline executes.
    """
    return [
        SessionJob.for_factory(
            factory,
            spec=scenario.spec,
            workload=workload_name,
            defense=scenario.defense,
            seed=scenario.seed,
            run_id=(scenario.name, scenario.defense, workload_name, run),
            duration_s=scenario.duration_s,
        )
        for workload_name in scenario.class_workloads
        for run in range(scenario.runs_per_class)
    ]


def simulate_runs(
    scenario: AttackScenario,
    factory: DefenseFactory,
    workers: int | None = None,
    cache: object = None,
    backend: object = None,
    precision: object = None,
) -> list[list[Trace]]:
    """Record ``runs_per_class`` executions of every class under the defense.

    Every ``(class, run)`` session is an independent declarative job, so
    the whole collection fans out through :func:`repro.exec.run_sessions`
    (``workers`` processes or the lock-step ``backend="batch"``, optional
    content-addressed trace cache) and is reshaped back to the paper's
    ``classes x runs`` nesting — in the same order, with bit-identical
    traces, as the serial loop this replaces.
    """
    jobs = scenario_jobs(scenario, factory)
    telemetry.ops(
        "pipeline.collect",
        scenario=scenario.name,
        defense=scenario.defense,
        classes=len(scenario.class_workloads),
        runs_per_class=scenario.runs_per_class,
    )
    traces = run_sessions(
        jobs, workers=workers, cache=cache, factory=factory, backend=backend,
        precision=precision,
    )
    per_class = scenario.runs_per_class
    return [
        traces[label * per_class:(label + 1) * per_class]
        for label in range(len(scenario.class_workloads))
    ]


def sample_runs(
    scenario: AttackScenario, runs: list[list[Trace]]
) -> list[list[np.ndarray]]:
    """Resample recorded traces through the attacker's sensor."""
    sampled: list[list[np.ndarray]] = []
    for label, class_runs in enumerate(runs):
        class_samples = []
        for run_index, trace in enumerate(class_runs):
            rng = spawn(scenario.seed, "attacker-sensor", scenario.name, label, run_index)
            if scenario.sensor == "outlet":
                meter = OutletMeter(scenario.spec, rng)
                series = meter.sample_trace(trace.power_w, trace.tick_s)
            else:
                sensor = RaplSensor(scenario.spec, rng)
                series = sensor.sample_trace(
                    trace.power_w, trace.tick_s, scenario.sample_interval_s
                )
            class_samples.append(series)
        sampled.append(class_samples)
    return sampled


def _split_runs(
    n_runs: int, train_frac: float, val_frac: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(n_runs)
    n_train = max(int(round(train_frac * n_runs)), 1)
    n_val = max(int(round(val_frac * n_runs)), 1)
    n_train = min(n_train, n_runs - 2)
    train = order[:n_train]
    val = order[n_train:n_train + n_val]
    test = order[n_train + n_val:]
    if test.size == 0:
        test = val[-1:]
        val = val[:-1]
    return train, val, test


def train_and_evaluate(
    scenario: AttackScenario, sampled: list[list[np.ndarray]]
) -> AttackOutcome:
    """Featurize, train the MLP, and evaluate on held-out runs."""
    feature_config = scenario.feature_config()
    stride = scenario.segment_stride
    rng = spawn(scenario.seed, "attack-split", scenario.name, scenario.defense)

    buckets = {"train": ([], []), "val": ([], []), "test": ([], [])}
    for label, class_samples in enumerate(sampled):
        train_idx, val_idx, test_idx = _split_runs(
            len(class_samples), scenario.train_frac, scenario.val_frac, rng
        )
        # Per-fold span: how each label's runs were split (run-level, so a
        # leaky segment-level split would be visible in the ops stream).
        telemetry.ops(
            "pipeline.fold",
            scenario=scenario.name,
            label=label,
            train=int(train_idx.size),
            val=int(val_idx.size),
            test=int(test_idx.size),
        )
        for bucket, indices in (("train", train_idx), ("val", val_idx), ("test", test_idx)):
            for run_index in indices:
                segments = segment_trace(
                    class_samples[run_index], feature_config.segment_len, stride
                )
                buckets[bucket][0].append(segments)
                buckets[bucket][1].extend([label] * segments.shape[0])

    data = {
        bucket: (np.vstack(segs), np.asarray(labels, dtype=int))
        for bucket, (segs, labels) in buckets.items()
    }

    featurizer = TraceFeaturizer(feature_config).fit(data["train"][0])
    x_train = featurizer.transform(data["train"][0])
    x_val = featurizer.transform(data["val"][0])
    x_test = featurizer.transform(data["test"][0])
    y_train, y_val, y_test = (data[b][1] for b in ("train", "val", "test"))

    telemetry.ops(
        "pipeline.train",
        scenario=scenario.name,
        n_train=int(y_train.size),
        n_val=int(y_val.size),
        n_features=int(x_train.shape[1]),
    )
    mlp_config = replace(scenario.mlp, seed=scenario.mlp.seed + scenario.seed)
    classifier = MLPClassifier(
        x_train.shape[1], len(scenario.class_workloads), mlp_config
    )
    classifier.fit(x_train, y_train, x_val, y_val)

    matrix = confusion_matrix(
        y_test, classifier.predict(x_test), len(scenario.class_workloads)
    )
    result = ConfusionResult(matrix, tuple(scenario.class_workloads))
    telemetry.ops(
        "pipeline.eval",
        scenario=scenario.name,
        n_test=int(y_test.size),
        average_accuracy=float(result.average_accuracy),
    )
    telemetry.count("attacks.pipeline.evaluations")
    return AttackOutcome(
        scenario=scenario,
        result=result,
        n_train=y_train.size,
        n_val=y_val.size,
        n_test=y_test.size,
    )


def run_attack(
    scenario: AttackScenario,
    factory: DefenseFactory,
    workers: int | None = None,
    cache: object = None,
    backend: object = None,
    precision: object = None,
) -> AttackOutcome:
    """The full pipeline: simulate, sample, train, evaluate.

    ``workers``, ``cache`` and ``backend`` reach the trace-collection phase
    only; the sensor sampling and training stages are deterministic
    functions of the collected traces, so a cached or batched re-run
    reproduces the identical outcome.
    """
    runs = simulate_runs(
        scenario, factory, workers=workers, cache=cache, backend=backend,
        precision=precision,
    )
    sampled = sample_runs(scenario, runs)
    outcome = train_and_evaluate(scenario, sampled)
    # Bind the outcome to its inputs in the run registry (no-op unless
    # REPRO_REGISTRY is on).
    record_run(
        kind="attack",
        name=scenario.name,
        jobs=scenario_jobs(scenario, factory),
        results={
            "average_accuracy": outcome.average_accuracy,
            "chance_accuracy": outcome.chance_accuracy,
            "n_train": outcome.n_train,
            "n_val": outcome.n_val,
            "n_test": outcome.n_test,
        },
    )
    return outcome
