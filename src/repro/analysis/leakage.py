"""Information-theoretic leakage estimation.

Quantifies how much a power trace reveals about a secret label as the
mutual information I(label; features), estimated with a discretized plug-in
estimator plus the Miller-Madow bias correction.  Zero bits means the
channel carries nothing (what Maya GS aims for); log2(n_classes) bits means
the label is fully recoverable.

This complements the classifier-accuracy view of the paper's evaluation:
accuracy depends on the attacker's model, mutual information bounds *every*
attacker.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mutual_information_bits", "leakage_per_feature"]


def _discretize(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Quantile binning: equal-population bins resist outliers."""
    edges = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    return np.searchsorted(edges, values, side="right")


def mutual_information_bits(
    features: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 8,
) -> float:
    """Miller-Madow-corrected plug-in MI between a scalar feature and labels.

    ``features`` is one scalar per trace (e.g. the trace's mean power, or
    one projection of it); ``labels`` the secret class.
    """
    features = np.asarray(features, dtype=float).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if features.size != labels.size:
        raise ValueError("features and labels must have equal length")
    if features.size < 4:
        raise ValueError("need at least four samples")
    if n_bins < 2:
        raise ValueError("need at least two bins")

    bins = _discretize(features, n_bins)
    classes = np.unique(labels)
    n = features.size

    joint = np.zeros((classes.size, n_bins))
    for row, label in enumerate(classes):
        mask = labels == label
        for b in range(n_bins):
            joint[row, b] = np.sum(bins[mask] == b)
    joint /= n
    p_label = joint.sum(axis=1, keepdims=True)
    p_bin = joint.sum(axis=0, keepdims=True)

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (p_label @ p_bin)
        terms = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    mi = float(terms.sum())

    # Miller-Madow bias correction: plug-in MI overestimates by roughly
    # (cells - rows - cols + 1) / (2 n ln 2).
    occupied = int(np.count_nonzero(joint))
    occupied_rows = int(np.count_nonzero(p_label))
    occupied_cols = int(np.count_nonzero(p_bin))
    bias = (occupied - occupied_rows - occupied_cols + 1) / (2.0 * n * np.log(2.0))
    return max(mi - bias, 0.0)


def leakage_per_feature(
    feature_matrix: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 8,
) -> np.ndarray:
    """MI of each feature column with the labels (a leakage profile).

    Useful to locate *where* in a trace the secret leaks — e.g. which time
    slots of a constant-mask trace carry the phase-transition glitches.
    """
    feature_matrix = np.atleast_2d(np.asarray(feature_matrix, dtype=float))
    return np.array(
        [
            mutual_information_bits(feature_matrix[:, col], labels, n_bins)
            for col in range(feature_matrix.shape[1])
        ]
    )
