"""Dynamic time warping (Section VII-B).

The paper reports that DTW — among other signal-processing tools — fails to
recover application structure from Maya GS traces.  This is the classic
O(n*m) dynamic program with an optional Sakoe-Chiba band, vectorized one
row at a time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw_distance", "dtw_normalized"]


def dtw_distance(a: np.ndarray, b: np.ndarray, band: int | None = None) -> float:
    """DTW alignment cost between two 1-D sequences (absolute difference).

    ``band`` constrains |i - j| to the Sakoe-Chiba radius; ``None`` means
    unconstrained.
    """
    a = np.asarray(a, dtype=float).reshape(-1)
    b = np.asarray(b, dtype=float).reshape(-1)
    if a.size == 0 or b.size == 0:
        raise ValueError("sequences must be non-empty")
    n, m = a.size, b.size
    if band is not None and band < abs(n - m):
        raise ValueError("band too narrow to align sequences of these lengths")

    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        if band is None:
            lo, hi = 1, m
        else:
            lo = max(1, i - band)
            hi = min(m, i + band)
        dist = np.abs(a[i - 1] - b[lo - 1:hi])
        # current[j] = dist + min(prev[j], prev[j-1], current[j-1])
        for offset, j in enumerate(range(lo, hi + 1)):
            current[j] = dist[offset] + min(prev[j], prev[j - 1], current[j - 1])
        prev = current
    return float(prev[m])


def dtw_normalized(a: np.ndarray, b: np.ndarray, band: int | None = None) -> float:
    """DTW cost per alignment step (comparable across lengths)."""
    a = np.asarray(a, dtype=float).reshape(-1)
    b = np.asarray(b, dtype=float).reshape(-1)
    return dtw_distance(a, b, band) / (a.size + b.size)
