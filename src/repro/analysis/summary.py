"""Summary statistics of averaged signals (Section VII-B, Figure 7).

The paper averages all traces of an application and compares the power-value
distributions across applications with box plots: an effective defense makes
the boxes near-identical.  This module computes those box statistics and the
cross-application similarity measures the tests and benches assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats", "average_traces", "distribution_overlap"]


@dataclass(frozen=True)
class BoxStats:
    """Matplotlib-style box-plot statistics with 1.5 IQR whiskers."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    n_outliers: int
    mean: float
    std: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(values: np.ndarray) -> BoxStats:
    """Box statistics of a sample, outliers beyond 1.5 IQR whiskers."""
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    low_limit = q1 - 1.5 * iqr
    high_limit = q3 + 1.5 * iqr
    inside = values[(values >= low_limit) & (values <= high_limit)]
    whisker_low = float(inside.min()) if inside.size else float(values.min())
    whisker_high = float(inside.max()) if inside.size else float(values.max())
    n_outliers = int(np.sum((values < low_limit) | (values > high_limit)))
    return BoxStats(
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        n_outliers=n_outliers,
        mean=float(values.mean()),
        std=float(values.std()),
    )


def average_traces(traces: list[np.ndarray]) -> np.ndarray:
    """Element-wise average of runs, trimmed to the shortest run."""
    if not traces:
        raise ValueError("need at least one trace")
    length = min(trace.size for trace in traces)
    if length == 0:
        raise ValueError("traces must be non-empty")
    stacked = np.stack([np.asarray(t, dtype=float)[:length] for t in traces])
    return stacked.mean(axis=0)


def distribution_overlap(a: np.ndarray, b: np.ndarray, n_bins: int = 40) -> float:
    """Histogram-intersection overlap of two samples, in [0, 1].

    1 means identical distributions (what Maya GS achieves across
    applications in Figure 7d); small values mean distinguishable ones.
    """
    a = np.asarray(a, dtype=float).reshape(-1)
    b = np.asarray(b, dtype=float).reshape(-1)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi - lo < 1e-12:
        return 1.0
    bins = np.linspace(lo, hi, n_bins + 1)
    ha, _ = np.histogram(a, bins=bins, density=False)
    hb, _ = np.histogram(b, bins=bins, density=False)
    pa = ha / ha.sum()
    pb = hb / hb.sum()
    return float(np.minimum(pa, pb).sum())
