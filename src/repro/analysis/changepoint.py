"""Change-point detection (Section VII-B, Figure 11).

The paper uses MATLAB's ``findchangepts`` to recover application phases
from power traces.  We implement the PELT algorithm (Killick et al., 2012)
with the Gaussian likelihood cost for a simultaneous change in mean and
variance — the standard equivalent.

PELT minimizes  sum_i cost(segment_i) + penalty * n_changepoints  exactly,
in near-linear time thanks to its pruning rule.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_cost", "pelt", "changepoint_times"]


def gaussian_cost(signal: np.ndarray) -> "SegmentCost":
    """Precompute cumulative statistics for O(1) segment costs."""
    return SegmentCost(signal)


class SegmentCost:
    """Twice the negative Gaussian log-likelihood of a segment."""

    #: Variance floor: prevents -inf costs on constant segments.
    MIN_VAR = 1e-8

    def __init__(self, signal: np.ndarray) -> None:
        signal = np.asarray(signal, dtype=float).reshape(-1)
        self.n = signal.size
        self._cum = np.concatenate([[0.0], np.cumsum(signal)])
        self._cum2 = np.concatenate([[0.0], np.cumsum(signal**2)])

    def cost(self, start: int, end: int) -> float:
        """Cost of signal[start:end] (end exclusive)."""
        length = end - start
        total = self._cum[end] - self._cum[start]
        total2 = self._cum2[end] - self._cum2[start]
        var = max(total2 / length - (total / length) ** 2, self.MIN_VAR)
        return length * np.log(var)


def pelt(
    signal: np.ndarray,
    penalty: float | None = None,
    min_size: int = 5,
) -> list[int]:
    """Exact penalized change-point segmentation.

    Returns the sorted interior change-point indices (each the first index
    of a new segment).  The default penalty is the BIC-style ``3 log n``
    appropriate for the two-parameter Gaussian cost.
    """
    signal = np.asarray(signal, dtype=float).reshape(-1)
    n = signal.size
    if n < 2 * min_size:
        return []
    if penalty is None:
        penalty = 3.0 * np.log(n)

    cost = SegmentCost(signal)
    # f[t]: optimal cost of signal[0:t]; partial candidate set per PELT.
    f = np.full(n + 1, np.inf)
    f[0] = -penalty
    last_change = np.zeros(n + 1, dtype=int)
    candidates = [0]

    for t in range(min_size, n + 1):
        best_cost = np.inf
        best_s = 0
        costs = {}
        for s in candidates:
            if t - s < min_size:
                continue
            c = f[s] + cost.cost(s, t) + penalty
            costs[s] = c
            if c < best_cost:
                best_cost = c
                best_s = s
        if not np.isfinite(best_cost):
            continue
        f[t] = best_cost
        last_change[t] = best_s
        # PELT pruning: a candidate whose cost already exceeds the best
        # (minus the penalty it could still save) can never win later.
        candidates = [
            s for s in candidates
            if costs.get(s, f[s]) - penalty <= best_cost
        ]
        candidates.append(t)

    changepoints = []
    t = n
    while t > 0:
        s = last_change[t]
        if s == 0:
            break
        changepoints.append(s)
        t = s
    return sorted(changepoints)


def changepoint_times(
    signal: np.ndarray, interval_s: float, penalty: float | None = None, min_size: int = 5
) -> np.ndarray:
    """Change-point locations in seconds."""
    return np.asarray(pelt(signal, penalty, min_size), dtype=float) * interval_s
