"""Signal-analysis substrate: change points, DTW, spectra, summaries."""

from .changepoint import changepoint_times, gaussian_cost, pelt
from .dtw import dtw_distance, dtw_normalized
from .leakage import leakage_per_feature, mutual_information_bits
from .spectrum import amplitude_spectrum, spectral_energy_spread, spectral_peaks
from .summary import BoxStats, average_traces, box_stats, distribution_overlap

__all__ = [
    "changepoint_times",
    "gaussian_cost",
    "pelt",
    "dtw_distance",
    "dtw_normalized",
    "leakage_per_feature",
    "mutual_information_bits",
    "amplitude_spectrum",
    "spectral_energy_spread",
    "spectral_peaks",
    "BoxStats",
    "average_traces",
    "box_stats",
    "distribution_overlap",
]
