"""Frequency-domain utilities used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["amplitude_spectrum", "spectral_peaks", "spectral_energy_spread"]


def amplitude_spectrum(
    signal: np.ndarray, interval_s: float
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided FFT magnitude of a (de-meaned) signal.

    Returns ``(frequencies_hz, magnitudes)``; the DC bin is dropped, as in
    the paper's Figure 4 spectra.
    """
    signal = np.asarray(signal, dtype=float).reshape(-1)
    if signal.size < 4:
        raise ValueError("signal too short for a spectrum")
    mags = np.abs(np.fft.rfft(signal - signal.mean())) / signal.size * 2.0
    freqs = np.fft.rfftfreq(signal.size, d=interval_s)
    return freqs[1:], mags[1:]


def spectral_peaks(
    freqs: np.ndarray,
    mags: np.ndarray,
    prominence_factor: float = 6.0,
    max_peaks: int = 16,
) -> list[tuple[float, float]]:
    """Locate discrete spectral lines: local maxima that stand
    ``prominence_factor`` times above the median magnitude.

    Returns ``(frequency, magnitude)`` pairs, strongest first.
    """
    freqs = np.asarray(freqs, dtype=float)
    mags = np.asarray(mags, dtype=float)
    if freqs.shape != mags.shape:
        raise ValueError("freqs and mags must have matching shapes")
    threshold = prominence_factor * float(np.median(mags))
    peaks = []
    for i in range(1, mags.size - 1):
        if mags[i] >= mags[i - 1] and mags[i] >= mags[i + 1] and mags[i] > threshold:
            peaks.append((float(freqs[i]), float(mags[i])))
    peaks.sort(key=lambda p: -p[1])
    return peaks[:max_peaks]


def spectral_energy_spread(mags: np.ndarray, top_bins: int = 5) -> float:
    """Fraction of spectral energy outside the strongest ``top_bins`` bins.

    Near 0 for a pure multi-tone signal, near 1 for a spread spectrum —
    the 'Spread' column of Table II.
    """
    mags = np.asarray(mags, dtype=float).reshape(-1)
    energy = mags**2
    total = float(energy.sum())
    if total <= 0.0:
        return 0.0
    top = float(np.sort(energy)[-top_bins:].sum())
    return 1.0 - top / total
