"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows it reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them).  The experiment scale defaults to ``smoke`` so the whole harness
completes in minutes; set ``REPRO_BENCH_SCALE=default`` (or ``full``) to
regenerate at higher fidelity.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import make_factory
from repro.experiments.config import get_scale
from repro.machine import SYS1, SYS2, SYS3

BENCH_SEED = 7


def bench_scale():
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def sys1_factory(scale):
    return make_factory(SYS1, scale, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sys2_factory(scale):
    return make_factory(SYS2, scale, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sys3_factory(scale):
    return make_factory(SYS3, scale, seed=BENCH_SEED)


def report(title: str, body: str) -> None:
    """Print a figure's regenerated rows under a banner."""
    bar = "=" * 64
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
