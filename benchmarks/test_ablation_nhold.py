"""Ablation: the mask generator's N_hold range (Section V-B).

The paper holds each parameter set for 6..120 samples.  Much shorter holds
degenerate toward per-sample noise (filterable, and hard to track); much
longer holds leave stretches that behave like a constant mask.  This
ablation checks the Table II properties and the controller's tracking error
across hold ranges.
"""

import numpy as np
from conftest import BENCH_SEED, report

from repro.core.maya import MayaInstance
from repro.core.runtime import make_machine, run_session
from repro.machine import ActuatorBank, SYS1, spawn
from repro.masks import GaussianSinusoidMask, analyze_signal
from repro.control import MatrixController
from repro.defenses.base import Defense
from repro.workloads import parsec_program

NHOLD_RANGES = ((2, 5), (6, 120), (240, 480))


class _FixedMaskMaya(Defense):
    name = "maya_nhold"

    def __init__(self, design, nhold_range):
        super().__init__()
        self._design = design
        self._nhold = nhold_range

    def prepare(self, machine, rng):
        bank = ActuatorBank(machine.spec)
        mask = GaussianSinusoidMask(self._design.mask_range_w, rng,
                                    nhold_range=self._nhold)
        self._instance = MayaInstance(
            controller=MatrixController(
                self._design.controller, bank,
                command_center=self._design.config.command_center,
            ),
            mask=mask,
            bank=bank,
        )

    def initial_settings(self):
        return self._instance.initial_settings()

    def decide(self, measured_w):
        settings = self._instance.decide(measured_w)
        self.current_target_w = self._instance.current_target_w
        return settings


def test_ablation_nhold_range(benchmark, scale, sys1_factory):
    design = sys1_factory.maya_design("gaussian_sinusoid")

    def sweep():
        rows = {}
        for nhold in NHOLD_RANGES:
            mask = GaussianSinusoidMask(
                design.mask_range_w, spawn(BENCH_SEED, "nhold", nhold),
                nhold_range=nhold,
            )
            props = analyze_signal(mask.generate(2000))
            run_id = ("ablation-nhold", nhold)
            machine = make_machine(SYS1, parsec_program("bodytrack"),
                                   seed=BENCH_SEED, run_id=run_id)
            trace = run_session(machine, _FixedMaskMaya(design, nhold),
                                seed=BENCH_SEED, run_id=run_id,
                                duration_s=scale.duration_s)
            err = trace.tracking_error()
            targets = trace.target_w[np.isfinite(trace.target_w)]
            rows[nhold] = {
                "flags": (props.changes_mean, props.changes_variance,
                          props.fft_spread, props.fft_peaks),
                "rel_error": float(err.mean() / targets.mean()),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    body = "\n".join(
        f"nhold={str(nhold):>10}  mean/var/spread/peaks={r['flags']}  "
        f"rel_error={r['rel_error']:.3f}"
        for nhold, r in rows.items()
    )
    report("Ablation: mask N_hold range", body)

    # The paper's 6..120 range keeps all four Table II properties.
    assert rows[(6, 120)]["flags"] == (True, True, True, True)
    # Per-sample randomization (holds of 2-5) is harder to track.
    assert rows[(2, 5)]["rel_error"] >= rows[(6, 120)]["rel_error"] - 0.01
