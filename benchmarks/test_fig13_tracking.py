"""Figure 13: mask targets versus measured power (controller quality)."""

from conftest import BENCH_SEED, report

from repro.experiments import fig13_tracking


def test_fig13_tracking_effectiveness(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig13_tracking.run(scale=scale, seed=BENCH_SEED, factory=sys1_factory),
        rounds=1, iterations=1,
    )
    report("Figure 13: mask vs measured power distributions", result.table())

    # Section V-A: the guardband/deviation-bound choice targets ~10%.
    assert result.relative_tracking_error < 0.10
    for app, overlap in result.overlap.items():
        assert overlap > 0.6, app
    for app in result.mask_boxes:
        gap = abs(result.mask_boxes[app].median - result.measured_boxes[app].median)
        assert gap < 1.0, app
