"""Section I: the remote power covert channel Maya thwarted.

Shao et al. decode bits from a victim's power through the building's power
delivery network; deploying Maya closed the channel.  This bench transmits
a payload through the simulated outlet with and without Maya and reports
the bit error rate.
"""

import numpy as np
from conftest import BENCH_SEED, report

from repro.attacks import CovertReceiver, CovertSender, random_bits
from repro.core.runtime import run_session
from repro.machine import SYS1, SimulatedMachine, spawn


def _transmit(defense, bits, run_id):
    sender = CovertSender(bits)
    machine = SimulatedMachine(
        SYS1, sender.program(), seed=BENCH_SEED, run_id=run_id, workload_jitter=0.0
    )
    trace = run_session(machine, defense, seed=BENCH_SEED, run_id=run_id,
                        duration_s=sender.duration_s)
    receiver = CovertReceiver(SYS1, seed=BENCH_SEED, run_id=run_id)
    return receiver.decode(trace, sender)


def test_sec1_covert_channel(benchmark, sys1_factory):
    bits = random_bits(60, spawn(BENCH_SEED, "covert-payload"))

    def run():
        open_channel = _transmit(sys1_factory.create("baseline"), bits, "covert-base")
        closed_channel = _transmit(sys1_factory.create("maya_gs"), bits, "covert-gs")
        return open_channel, closed_channel

    open_channel, closed_channel = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Section I: remote covert channel over the power network",
        f"baseline BER: {open_channel.bit_error_rate:.2f} (channel open)\n"
        f"Maya GS  BER: {closed_channel.bit_error_rate:.2f} (channel "
        f"{'CLOSED' if closed_channel.channel_closed else 'still open!'})",
    )

    # The paper's deployment result: the channel works undefended and is
    # destroyed by Maya (BER collapses to coin flipping).
    assert open_channel.bit_error_rate < 0.05
    assert closed_channel.channel_closed
