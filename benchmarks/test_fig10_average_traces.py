"""Figure 10: averaged traces of three applications per defense."""

from conftest import BENCH_SEED, report

from repro.experiments import fig10_average_traces


def test_fig10_average_traces(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig10_average_traces.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory
        ),
        rounds=1, iterations=1,
    )
    lines = [result.table(), ""]
    for defense, averages in result.averages.items():
        means = ", ".join(f"{app}={avg.mean():.2f}W" for app, avg in averages.items())
        lines.append(f"{defense:<16} {means}")
    report("Figure 10: averaged traces (blackscholes/bodytrack/water_nsquared)",
           "\n".join(lines))

    sep = result.separation
    # Paper: Maya GS makes the averaged traces indistinguishable, while the
    # baselines keep clearly different shapes.  (Maya Constant trivially
    # equalizes the *means* too — its leakage lives in transients and is
    # covered by Figures 6 and 11.)
    assert sep["maya_gs"] < 0.08
    assert sep["maya_gs"] < sep["noisy_baseline"] / 2.0
    assert sep["maya_gs"] < sep["random_inputs"] / 2.0
