"""Ablation: mask family (the Table II design choice, attacked end-to-end).

Runs the application-detection attack against Maya deploying each mask
family, confirming the paper's design argument: only the gaussian-sinusoid
obfuscates; simpler masks leave exploitable structure.
"""

import pytest
from conftest import BENCH_SEED, report

from repro.attacks import run_attack
from repro.attacks.mlp import MLPConfig
from repro.defenses.designs import MayaDefense
from repro.experiments.common import attack_scenario, experiment_apps
from repro.machine import SYS1


class _MaskFamilyFactory:
    """Create-per-run wrapper exposing one Maya mask family by name."""

    def __init__(self, base_factory, family):
        self._base = base_factory
        self._family = family

    def create(self, design_name):
        assert design_name == "ablation"
        return MayaDefense(self._base.maya_design(self._family))


@pytest.mark.parametrize("family", ["constant", "uniform", "gaussian", "sinusoid",
                                    "gaussian_sinusoid"])
def test_ablation_mask_family(benchmark, scale, sys1_factory, family):
    apps = experiment_apps(scale)[:4]
    scenario = attack_scenario(
        name=f"ablation-{family}", spec=SYS1, class_workloads=apps,
        defense="ablation", scale=scale, seed=BENCH_SEED, pool=20,
        runs_per_class=max(scale.runs_per_class // 2, 8),
        mlp=MLPConfig(hidden_sizes=(96, 48), max_epochs=40),
    )
    factory = _MaskFamilyFactory(sys1_factory, family)
    outcome = benchmark.pedantic(
        lambda: run_attack(scenario, factory), rounds=1, iterations=1
    )
    chance = outcome.chance_accuracy
    report(
        f"Ablation mask={family}",
        f"attack accuracy {outcome.average_accuracy:.0%} (chance {chance:.0%})",
    )
    if family == "gaussian_sinusoid":
        assert outcome.average_accuracy < chance + 0.2
    if family == "constant":
        # The constant mask leaks (Figure 6b).
        assert outcome.average_accuracy > chance + 0.12
