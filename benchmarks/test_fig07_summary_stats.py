"""Figure 7: summary statistics of averaged signals per defense."""

from conftest import BENCH_SEED, report

from repro.experiments import fig07_summary_stats


def test_fig07_summary_statistics(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig07_summary_stats.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory
        ),
        rounds=1, iterations=1,
    )
    lines = [result.table(), ""]
    for defense, boxes in result.boxes.items():
        lines.append(f"-- {defense}")
        for app, stats in boxes.items():
            lines.append(
                f"   {app:<16} median={stats.median:6.2f} "
                f"iqr={stats.iqr:5.2f} whiskers=[{stats.whisker_low:5.2f},"
                f" {stats.whisker_high:5.2f}]"
            )
    report("Figure 7: box statistics of averaged traces", "\n".join(lines))

    spread = result.median_spread_w
    # Paper shape: distributions get progressively closer; Maya GS makes
    # them near-identical (Figure 7d) while Noisy Baseline fingerprints
    # every app (Figure 7a).
    assert spread["maya_gs"] < 1.0
    assert spread["maya_gs"] < spread["noisy_baseline"] / 3.0
    assert spread["maya_gs"] <= spread["maya_constant"] + 0.5
    assert result.mean_overlap["maya_gs"] > result.mean_overlap["noisy_baseline"]
