"""Figure 11: change-point analysis of blackscholes per defense."""

from conftest import BENCH_SEED, report

from repro.experiments import fig11_changepoints


def test_fig11_changepoint_detection(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig11_changepoints.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory
        ),
        rounds=1, iterations=1,
    )
    report("Figure 11: change-point detection on blackscholes", result.table())

    rows = result.per_defense
    # Phases recoverable without Maya GS (excess over chance detections).
    assert rows["noisy_baseline"].excess_recall > 0.5
    assert rows["maya_constant"].excess_recall > 0.5
    # Maya GS: many artificial phases, the true ones at ~chance level, and
    # the application's completion stays invisible.
    assert rows["maya_gs"].detected_times_s.size >= 5
    assert not rows["maya_gs"].completion_detected
    leaky_completion = [
        rows[name].completion_detected
        for name in ("noisy_baseline", "random_inputs")
    ]
    assert any(leaky_completion)
