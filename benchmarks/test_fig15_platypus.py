"""Figure 15: hiding the executed instruction (PLATYPUS defense)."""

from conftest import BENCH_SEED, report

from repro.experiments import fig15_platypus


def test_fig15_platypus_defense(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig15_platypus.run(scale=scale, seed=BENCH_SEED, factory=sys1_factory),
        rounds=1, iterations=1,
    )
    lines = [result.table(), ""]
    for defense, averages in result.averages.items():
        means = ", ".join(f"{ins}={avg.mean():.2f}W" for ins, avg in averages.items())
        lines.append(f"{defense:<12} {means}")
    report("Figure 15: imul/mov/xor under Baseline vs Maya GS", "\n".join(lines))

    # Paper: clearly separated on the Baseline (Figure 15a/c), practically
    # indistinguishable under Maya GS (Figure 15b/d).
    assert result.separation["baseline"] > 2.0
    assert result.classifier_accuracy["baseline"] > 0.9
    assert result.separation["maya_gs"] < 0.5
    assert result.classifier_accuracy["maya_gs"] < 0.6
