"""Figure 4 / Table II: mask families and their signal properties."""

from conftest import BENCH_SEED, report

from repro.experiments import fig04_tab02_masks


def test_fig04_table2_mask_properties(benchmark, scale):
    result = benchmark.pedantic(
        lambda: fig04_tab02_masks.run(scale=scale, seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    report("Table II / Figure 4: mask signal properties", result.table())

    # Every row of Table II must match the paper exactly.
    assert result.all_match_paper(), result.table()
    # The proposed mask is the only one with all four properties.
    gs = result.rows["gaussian_sinusoid"]
    assert gs.flags() == (True, True, True, True)
