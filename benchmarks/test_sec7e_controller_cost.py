"""Section VII-E: Maya's own runtime costs (microbenchmarks).

Unlike the figure-level benchmarks, these use pytest-benchmark's timing
machinery directly: the controller step and mask sampling are the two
operations Maya executes every 20 ms.
"""

import numpy as np
from conftest import BENCH_SEED, report

from repro.experiments import sec7e_controller_cost
from repro.machine import spawn


def test_sec7e_summary(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: sec7e_controller_cost.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory,
            timing_iterations=5000,
        ),
        rounds=1, iterations=1,
    )
    report("Section VII-E: controller/mask runtime costs", result.table())
    assert result.controller_states == 11
    assert result.storage_bytes < 1024


def test_sec7e_controller_step_latency(benchmark, sys1_factory):
    design = sys1_factory.maya_design("gaussian_sinusoid")
    instance = design.instantiate(spawn(BENCH_SEED, "bench-step"))
    rng = np.random.default_rng(0)
    low, high = design.mask_range_w

    def step():
        instance.controller.step(
            float(rng.uniform(low, high)), float(rng.uniform(low, high))
        )

    benchmark(step)
    # Python-level budget: well under the 20 ms control interval.
    assert benchmark.stats["mean"] < 0.002


def test_sec7e_mask_sample_latency(benchmark, sys1_factory):
    design = sys1_factory.maya_design("gaussian_sinusoid")
    instance = design.instantiate(spawn(BENCH_SEED, "bench-mask"))
    benchmark(instance.mask.next_target)
    assert benchmark.stats["mean"] < 0.001
