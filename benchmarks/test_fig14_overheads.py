"""Figure 14 + Section VII-E energy: power and performance overheads."""

from conftest import BENCH_SEED, report

from repro.experiments import fig14_overheads


def test_fig14_power_performance_overheads(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig14_overheads.run(scale=scale, seed=BENCH_SEED, factory=sys1_factory),
        rounds=1, iterations=1,
    )
    lines = [result.table(), "", "per-app baseline reference:"]
    for app in result.baseline_power_w:
        lines.append(
            f"  {app:<16} {result.baseline_power_w[app]:6.2f} W, "
            f"{result.baseline_time_s[app]:6.1f} s"
        )
    report("Figure 14: power / execution time vs insecure Baseline", "\n".join(lines))

    # Paper shape assertions:
    for defense in result.time_ratio:
        # (a) every defense slows execution down,
        assert result.mean_time_ratio(defense) > 1.1, defense
    # (b) Maya GS has the lowest execution-time overhead of the defenses,
    gs_time = result.mean_time_ratio("maya_gs")
    for defense in ("noisy_baseline", "random_inputs", "maya_constant"):
        assert gs_time <= result.mean_time_ratio(defense) + 0.15, defense
    # (c) Maya GS total energy is the closest to Baseline (Section VII-E).
    gs_energy_gap = abs(result.mean_energy_ratio("maya_gs") - 1.0)
    for defense in ("noisy_baseline", "random_inputs", "maya_constant"):
        assert gs_energy_gap <= abs(result.mean_energy_ratio(defense) - 1.0) + 0.4
