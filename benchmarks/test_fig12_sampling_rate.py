"""Figure 12: attacker sampling at 2/5/10/20 ms against Maya GS."""

from conftest import BENCH_SEED, report

from repro.experiments import fig12_sampling_rate


def test_fig12_sampling_rates(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig12_sampling_rate.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory
        ),
        rounds=1, iterations=1,
    )
    report("Figure 12: detection accuracy vs attacker sampling interval",
           result.table())

    # Paper: faster sampling does not help; accuracy stays near chance at
    # every rate.
    for interval, accuracy in result.accuracies.items():
        assert accuracy < result.chance + 0.20, f"leak at {interval*1e3:.0f} ms"
    spread = max(result.accuracies.values()) - min(result.accuracies.values())
    assert spread < 0.25
