"""Figure 8: video-detection attack on Sys2.

Paper: Random Inputs 72%, Maya Constant 90%, Maya GS 24% (chance 25%).
"""

from conftest import BENCH_SEED, report

from repro.experiments import fig08_video_detection


def test_fig08_video_detection(benchmark, scale, sys2_factory):
    result = benchmark.pedantic(
        lambda: fig08_video_detection.run(
            scale=scale, seed=BENCH_SEED, factory=sys2_factory
        ),
        rounds=1, iterations=1,
    )
    report("Figure 8: detecting the video being encoded", result.table())

    acc = result.accuracies
    chance = result.chance
    # Only Maya GS hides the video; both other designs leak.
    assert acc["maya_gs"] < chance + 0.20
    assert acc["random_inputs"] > chance + 0.20
    assert acc["maya_constant"] > chance + 0.20
    assert acc["maya_gs"] < min(acc["random_inputs"], acc["maya_constant"]) - 0.15
