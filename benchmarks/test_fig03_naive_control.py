"""Figure 3: naive constant-power feedback versus the formal controller."""

from conftest import BENCH_SEED, report

from repro.experiments import fig03_naive_control


def test_fig03_naive_vs_formal(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig03_naive_control.run(scale=scale, seed=BENCH_SEED, factory=sys1_factory),
        rounds=1, iterations=1,
    )
    rows = "\n".join(str(row) for row in result.rows())
    report("Figure 3: naive feedback vs formal control (constant target)", rows)

    # Paper shape: the naive trace misses the target and keeps the
    # original's features; the formal controller does neither.
    assert result.formal_mean_error_w < result.naive_mean_error_w
    assert result.naive_app_correlation > result.formal_app_correlation + 0.2
