"""Figure 9: webpage-detection attack via the AC outlet on Sys3.

Paper: Random Inputs 51%, Maya Constant 40%, Maya GS 10% (chance 14%).
"""

from conftest import BENCH_SEED, report

from repro.experiments import fig09_webpage_detection


def test_fig09_webpage_detection(benchmark, scale, sys3_factory):
    result = benchmark.pedantic(
        lambda: fig09_webpage_detection.run(
            scale=scale, seed=BENCH_SEED, factory=sys3_factory
        ),
        rounds=1, iterations=1,
    )
    report("Figure 9: detecting webpages from outlet power (FFT attack)", result.table())

    acc = result.accuracies
    chance = result.chance
    # Maya GS is at chance (paper: 10% vs 14% chance) and Maya Constant
    # leaks pages (paper: 40%).  Known divergence, recorded in
    # EXPERIMENTS.md: our simulated Haswell's input randomization is
    # relatively stronger than the real Sys3's, so Random Inputs lands at
    # chance here instead of the paper's 51%.
    assert acc["maya_gs"] < chance + 0.12
    assert acc["maya_constant"] > chance + 0.15
    assert acc["maya_gs"] < acc["maya_constant"] - 0.10
