"""Ablation: the uncertainty guardband of the controller synthesis.

The paper sets a 40% guardband after evaluating several choices
(Section V-A).  This ablation re-synthesizes the controller at different
guardbands on the same identified plant and measures tracking quality:
small guardbands track tighter but rely on the model more; large ones
detune the loop.
"""

import numpy as np
from conftest import BENCH_SEED, report

from repro.control import MatrixController, SynthesisSpec, design_controller
from repro.core.maya import MayaInstance
from repro.core.runtime import make_machine, run_session
from repro.defenses.designs import MayaDefense
from repro.machine import ActuatorBank, SYS1
from repro.workloads import parsec_program

GUARDBANDS = (0.1, 0.4, 0.7)


def test_ablation_guardband(benchmark, scale, sys1_factory):
    base_design = sys1_factory.maya_design("gaussian_sinusoid")
    plant = base_design.plant

    def sweep():
        rows = {}
        for guardband in GUARDBANDS:
            controller = design_controller(plant, SynthesisSpec(guardband=guardband))
            design = type(base_design)(
                spec=base_design.spec,
                config=base_design.config,
                plant=plant,
                controller=controller,
                mask_range_w=base_design.mask_range_w,
            )
            run_id = ("ablation-gb", guardband)
            machine = make_machine(SYS1, parsec_program("bodytrack"),
                                   seed=BENCH_SEED, run_id=run_id)
            trace = run_session(machine, MayaDefense(design), seed=BENCH_SEED,
                                run_id=run_id, duration_s=scale.duration_s)
            err = trace.tracking_error()
            targets = trace.target_w[np.isfinite(trace.target_w)]
            rows[guardband] = {
                "stable": controller.is_stable(),
                "rel_error": float(err.mean() / targets.mean()),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    body = "\n".join(
        f"guardband={gb:.1f}  stable={r['stable']}  rel_error={r['rel_error']:.3f}"
        for gb, r in rows.items()
    )
    report("Ablation: synthesis guardband vs tracking error", body)

    # Every guardband must give a stable design on the nominal plant.
    assert all(r["stable"] for r in rows.values())
    # The paper's 40% setting keeps deviations within the ~10% bound.
    assert rows[0.4]["rel_error"] < 0.10
    # Heavy detuning costs tracking accuracy.
    assert rows[0.7]["rel_error"] >= rows[0.1]["rel_error"] - 0.01
