"""Figure 6: application-detection attack on Sys1.

Paper: Random Inputs 94%, Maya Constant 62%, Maya GS 14% (chance 9%).
"""

from conftest import BENCH_SEED, report

from repro.experiments import fig06_app_detection


def test_fig06_app_detection(benchmark, scale, sys1_factory):
    result = benchmark.pedantic(
        lambda: fig06_app_detection.run(
            scale=scale, seed=BENCH_SEED, factory=sys1_factory
        ),
        rounds=1, iterations=1,
    )
    report("Figure 6: detecting the running application", result.table())
    for name, outcome in result.outcomes.items():
        report(f"Figure 6 confusion matrix: {name}", outcome.result.formatted())

    acc = result.accuracies
    chance = result.chance
    # Maya GS obfuscates to near-chance; the other designs leak heavily.
    assert acc["maya_gs"] < chance + 0.15
    assert acc["random_inputs"] > 2.0 * chance
    assert acc["maya_constant"] > 2.0 * chance
    assert acc["maya_gs"] < min(acc["random_inputs"], acc["maya_constant"]) - 0.15
